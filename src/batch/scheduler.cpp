#include "batch/scheduler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "align/gactx.h"
#include "align/kernels/kernel_registry.h"
#include "batch/shard.h"
#include "obs/trace.h"
#include "seed/dsoft.h"
#include "seed/seed_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/work_queue.h"
#include "wga/extend_stage.h"
#include "wga/filter_stage.h"

namespace darwin::batch {

namespace {

/** Work items flowing between the stages. */
struct PrepareTask {
    std::size_t pair = 0;
};
struct SeedTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
    std::size_t shard = 0;
};
struct FilterTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
    std::size_t shard = 0;
    std::vector<seed::SeedHit> hits;
};
struct ExtendTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
};
struct ChainTask {
    std::size_t pair = 0;
};

/** Per-strand dataflow state of one pair. */
struct StrandState {
    const seq::Sequence* query = nullptr;  ///< oriented strand sequence
    std::span<const std::uint8_t> query_span;
    std::vector<Shard> shards;
    std::unique_ptr<wga::FilterStage> filter;
    /** Candidates per shard, merged canonically when the last shard
     *  finishes filtering. */
    std::vector<std::vector<wga::FilterCandidate>> shard_candidates;
    std::atomic<std::size_t> shards_remaining{0};
    std::vector<wga::FilterCandidate> candidates;
    std::vector<align::Alignment> alignments;
};

/** Everything the engine tracks for one manifest entry. */
struct PairState {
    const BatchJob* job = nullptr;
    const seq::Sequence* target_flat = nullptr;
    std::span<const std::uint8_t> target_span;
    seq::Sequence query_rc;  ///< owned reverse complement (both-strands)
    std::unique_ptr<seed::SeedIndex> index;
    std::unique_ptr<seed::DsoftSeeder> seeder;
    std::array<StrandState, 2> strands;
    std::size_t num_strands = 1;
    std::atomic<std::size_t> strands_remaining{1};
    std::mutex stats_mutex;
    wga::WgaResult result;
};

/** The dataflow engine for one run() invocation. */
class Engine {
  public:
    Engine(const BatchOptions& options, MetricsRegistry& metrics,
           const std::vector<BatchJob>& jobs)
        : options_(options), metrics_(metrics), jobs_(jobs),
          prepare_queue_(std::max<std::size_t>(jobs.size(), 1)),
          seed_queue_(options.queue_capacity),
          filter_queue_(options.queue_capacity),
          extend_queue_(options.queue_capacity),
          chain_queue_(options.queue_capacity),
          pairs_remaining_(jobs.size())
    {
        pairs_.reserve(jobs.size());
        for (const BatchJob& job : jobs_) {
            auto pair = std::make_unique<PairState>();
            pair->job = &job;
            pairs_.push_back(std::move(pair));
        }
    }

    std::vector<BatchPairResult>
    run()
    {
        if (jobs_.empty())
            return {};
        // Materialize lazily-built flattened genomes on this thread:
        // jobs may share Genome objects, and Genome::flattened() is not
        // safe to first-build concurrently.
        for (const BatchJob& job : jobs_) {
            require(job.target != nullptr && job.query != nullptr,
                    "batch: job missing target/query genome");
            job.target->flattened();
            job.query->flattened();
        }
        metrics_.counter("batch.pairs").add(jobs_.size());
        // Which kernel implementation the filter and extension stages
        // dispatch to (id: 0 scalar, 1 sse42, 2 avx2) — same gauges the
        // serial pipeline publishes, so batch and serial runs stay
        // comparable.
        const int kernel_id =
            align::kernels::KernelRegistry::instance().active().id;
        metrics_.gauge("wga.filter.kernel").set(kernel_id);
        metrics_.gauge("wga.extend.kernel").set(kernel_id);

        for (std::size_t p = 0; p < jobs_.size(); ++p) {
            PrepareTask task{p};
            push_task(prepare_queue_, task, "prepare", kPrepare);
        }

        std::size_t num_workers = options_.num_threads;
        if (num_workers == 0) {
            num_workers = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
        }
        std::vector<std::thread> workers;
        workers.reserve(num_workers);
        for (std::size_t w = 0; w < num_workers; ++w)
            workers.emplace_back([this] { worker_loop(); });
        for (auto& worker : workers)
            worker.join();
        if (error_)
            std::rethrow_exception(error_);

        std::vector<BatchPairResult> out;
        out.reserve(pairs_.size());
        for (std::size_t p = 0; p < pairs_.size(); ++p) {
            out.push_back(BatchPairResult{jobs_[p].name,
                                          std::move(pairs_[p]->result)});
        }
        return out;
    }

  private:
    /** Stage depth, deepest first; used to bound help-drain recursion. */
    enum Stage : int {
        kChain = 0,
        kExtend = 1,
        kFilter = 2,
        kSeed = 3,
        kPrepare = 4,
    };

    /**
     * Push to a stage queue without ever blocking the pipeline: when the
     * queue is full, help drain work at the target stage or deeper until
     * space opens. Helping only downstream keeps the recursion bounded
     * by the pipeline depth, and is what lets a single worker thread run
     * the whole dataflow without deadlocking on backpressure.
     */
    template <typename Queue, typename Task>
    void
    push_task(Queue& queue, Task& task, const char* stage, int stage_level)
    {
        while (!queue.try_push(task)) {
            if (done_.load(std::memory_order_acquire))
                return;  // aborting; drop the task
            if (!run_one(stage_level))
                std::this_thread::yield();
        }
        metrics_.gauge(strprintf("batch.queue.%s.depth", stage))
            .set(static_cast<std::int64_t>(queue.size()));
        wake_.notify_one();
    }

    void
    worker_loop()
    {
        while (!done_.load(std::memory_order_acquire)) {
            if (run_one(kPrepare))
                continue;
            // Timed wait: a plain wait could miss a notify that raced
            // with the queue polls; 1ms bounds the idle-retry latency.
            std::unique_lock<std::mutex> lock(wake_mutex_);
            wake_.wait_for(lock, std::chrono::milliseconds(1));
        }
    }

    /** Run one task at `max_level` or deeper (deepest first). False
     *  when those queues are all empty (work may still be in flight on
     *  other workers). */
    bool
    run_one(int max_level)
    {
        try {
            if (auto task = chain_queue_.try_pop()) {
                after_pop("chain", chain_queue_);
                do_chain(*task);
                return true;
            }
            if (max_level >= kExtend) {
                if (auto task = extend_queue_.try_pop()) {
                    after_pop("extend", extend_queue_);
                    do_extend(*task);
                    return true;
                }
            }
            if (max_level >= kFilter) {
                if (auto task = filter_queue_.try_pop()) {
                    after_pop("filter", filter_queue_);
                    do_filter(*task);
                    return true;
                }
            }
            if (max_level >= kSeed) {
                if (auto task = seed_queue_.try_pop()) {
                    after_pop("seed", seed_queue_);
                    do_seed(*task);
                    return true;
                }
            }
            if (max_level >= kPrepare) {
                if (auto task = prepare_queue_.try_pop()) {
                    after_pop("prepare", prepare_queue_);
                    do_prepare(*task);
                    return true;
                }
            }
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(error_mutex_);
                if (!error_)
                    error_ = std::current_exception();
            }
            done_.store(true, std::memory_order_release);
            wake_.notify_all();
            return true;
        }
        return false;
    }

    template <typename Queue>
    void
    after_pop(const char* stage, Queue& queue)
    {
        metrics_.gauge(strprintf("batch.queue.%s.depth", stage))
            .set(static_cast<std::int64_t>(queue.size()));
    }

    void
    do_prepare(const PrepareTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("prepare", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        PairState& pair = *pairs_[task.pair];
        const wga::WgaParams& params = options_.params;

        pair.target_flat = &pair.job->target->flattened();
        pair.target_span = {pair.target_flat->codes().data(),
                            pair.target_flat->size()};
        const seed::SeedPattern pattern(params.seed_pattern);
        pair.index =
            std::make_unique<seed::SeedIndex>(*pair.target_flat, pattern);
        pair.seeder =
            std::make_unique<seed::DsoftSeeder>(*pair.index, params.dsoft);

        pair.num_strands = params.align_both_strands ? 2 : 1;
        pair.strands_remaining.store(pair.num_strands);
        const seq::Sequence& query_fwd = pair.job->query->flattened();
        if (pair.num_strands == 2)
            pair.query_rc = query_fwd.reverse_complement();

        const std::size_t margin = default_shard_margin(params);
        std::size_t total_shards = 0;
        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            strand.query = s == 0 ? &query_fwd : &pair.query_rc;
            strand.query_span = {strand.query->codes().data(),
                                 strand.query->size()};
            strand.shards =
                make_shards(strand.query->size(), options_.shard_length,
                            params.dsoft.chunk_size, margin);
            strand.shard_candidates.resize(strand.shards.size());
            strand.shards_remaining.store(strand.shards.size());
            strand.filter = std::make_unique<wga::FilterStage>(
                params, pair.target_span, strand.query_span);
            total_shards += strand.shards.size();
        }
        {
            // Index construction is the serial pipeline's up-front
            // seed_seconds; account it the same way.
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.seed_seconds += timer.seconds();
        }
        metrics_.counter("batch.shards").add(total_shards);
        metrics_.histogram("batch.prepare.seconds").observe(timer.seconds());

        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            if (strand.shards.empty()) {
                // Empty strand (zero-length query): complete it now.
                ExtendTask extend{task.pair, s};
                push_task(extend_queue_, extend, "extend", kExtend);
                continue;
            }
            for (std::size_t shard = 0; shard < strand.shards.size();
                 ++shard) {
                SeedTask seed{task.pair, s, shard};
                push_task(seed_queue_, seed, "seed", kSeed);
            }
        }
    }

    void
    do_seed(const SeedTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("seed", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        span.arg("shard", static_cast<std::int64_t>(task.shard));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];
        const Shard& shard = strand.shards[task.shard];
        const std::size_t chunk_size = options_.params.dsoft.chunk_size;

        // Seed the shard chunk-by-chunk — the exact decomposition
        // DsoftSeeder::seed_all uses, so the hit set is identical.
        wga::PipelineStats local;
        FilterTask filter{task.pair, task.strand, task.shard, {}};
        for (std::size_t begin = shard.begin; begin < shard.end;
             begin += chunk_size) {
            const std::size_t end =
                std::min(strand.query->size(), begin + chunk_size);
            auto hits = pair.seeder->seed_chunk(strand.query_span, begin,
                                                end, &local.seeding);
            filter.hits.insert(filter.hits.end(),
                               std::make_move_iterator(hits.begin()),
                               std::make_move_iterator(hits.end()));
        }
        local.seed_seconds = timer.seconds();
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }
        metrics_.counter("batch.seed.tasks").add(1);
        metrics_.counter("batch.seed.lookups").add(local.seeding.seed_lookups);
        metrics_.counter("batch.seed.raw_hits").add(local.seeding.seed_hits);
        metrics_.counter("batch.seed.hits").add(filter.hits.size());
        metrics_.histogram("batch.seed.seconds").observe(timer.seconds());
        push_task(filter_queue_, filter, "filter", kFilter);
    }

    void
    do_filter(FilterTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("filter", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        span.arg("shard", static_cast<std::int64_t>(task.shard));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];

        wga::PipelineStats local;
        std::vector<wga::FilterCandidate> candidates;
        for (const seed::SeedHit& hit : task.hits) {
            if (auto candidate = strand.filter->filter(hit, &local.filter))
                candidates.push_back(*candidate);
        }
        local.filter_seconds = timer.seconds();
        metrics_.counter("batch.filter.tasks").add(1);
        metrics_.counter("batch.filter.hits_in").add(task.hits.size());
        metrics_.counter("batch.filter.cells").add(local.filter.cells);
        metrics_.counter("batch.filter.candidates").add(candidates.size());
        metrics_.counter("batch.filter.dropped")
            .add(task.hits.size() - candidates.size());
        metrics_.histogram("batch.filter.seconds").observe(timer.seconds());
        strand.shard_candidates[task.shard] = std::move(candidates);
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }

        if (strand.shards_remaining.fetch_sub(1) == 1) {
            // Last shard of this strand: merge in shard order and apply
            // the canonical extension order (same sort as filter_all),
            // making the candidate stream bit-identical to the serial
            // pipeline's.
            std::size_t total = 0;
            for (const auto& shard_candidates : strand.shard_candidates)
                total += shard_candidates.size();
            strand.candidates.reserve(total);
            for (auto& shard_candidates : strand.shard_candidates) {
                strand.candidates.insert(strand.candidates.end(),
                                         shard_candidates.begin(),
                                         shard_candidates.end());
                shard_candidates.clear();
                shard_candidates.shrink_to_fit();
            }
            wga::sort_candidates(strand.candidates);
            ExtendTask extend{task.pair, task.strand};
            push_task(extend_queue_, extend, "extend", kExtend);
        }
    }

    void
    do_extend(const ExtendTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("extend", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];
        const wga::WgaParams& params = options_.params;

        wga::PipelineStats local;
        const align::GactXTileAligner aligner(params.gactx);
        wga::ExtendStage stage(params, pair.target_span, strand.query_span);
        strand.alignments =
            stage.extend_all(strand.candidates, aligner, &local.extend);
        strand.candidates.clear();
        strand.candidates.shrink_to_fit();
        const align::Strand orientation = task.strand == 0
                                              ? align::Strand::Forward
                                              : align::Strand::Reverse;
        for (align::Alignment& alignment : strand.alignments)
            alignment.query_strand = orientation;
        local.extend_seconds = timer.seconds();
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }
        metrics_.counter("batch.extend.tasks").add(1);
        metrics_.counter("batch.extend.anchors_in")
            .add(local.extend.anchors_in);
        metrics_.counter("batch.extend.absorbed").add(local.extend.absorbed);
        metrics_.counter("batch.extend.extended").add(local.extend.extended);
        metrics_.counter("batch.extend.duplicates")
            .add(local.extend.duplicates);
        metrics_.counter("batch.extend.tiles")
            .add(local.extend.extension.tiles);
        metrics_.counter("batch.extend.xdrop_terminations")
            .add(local.extend.extension.xdrop_terminations);
        metrics_.counter("batch.extend.matched_bases")
            .add(local.extend.matched_bases);
        metrics_.counter("batch.alignments").add(strand.alignments.size());
        metrics_.histogram("batch.extend.seconds").observe(timer.seconds());

        if (pair.strands_remaining.fetch_sub(1) == 1) {
            ChainTask chain{task.pair};
            push_task(chain_queue_, chain, "chain", kChain);
        }
    }

    void
    do_chain(const ChainTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("chain", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        PairState& pair = *pairs_[task.pair];
        // Forward alignments first, then reverse — the serial
        // pipeline's concatenation order, which the chainer sees.
        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            pair.result.alignments.insert(
                pair.result.alignments.end(),
                std::make_move_iterator(strand.alignments.begin()),
                std::make_move_iterator(strand.alignments.end()));
            strand.alignments.clear();
        }
        pair.result.chains = chain::chain_alignments(
            pair.result.alignments, options_.chain_params);
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.chain_seconds += timer.seconds();
        }
        metrics_.counter("batch.chain.tasks").add(1);
        metrics_.counter("batch.chains").add(pair.result.chains.size());
        metrics_.histogram("batch.chain.seconds").observe(timer.seconds());
        metrics_.counter("batch.pairs_completed").add(1);

        if (pairs_remaining_.fetch_sub(1) == 1) {
            done_.store(true, std::memory_order_release);
            wake_.notify_all();
        }
    }

    const BatchOptions& options_;
    MetricsRegistry& metrics_;
    const std::vector<BatchJob>& jobs_;
    std::vector<std::unique_ptr<PairState>> pairs_;

    WorkQueue<PrepareTask> prepare_queue_;
    WorkQueue<SeedTask> seed_queue_;
    WorkQueue<FilterTask> filter_queue_;
    WorkQueue<ExtendTask> extend_queue_;
    WorkQueue<ChainTask> chain_queue_;

    std::atomic<std::size_t> pairs_remaining_;
    std::atomic<bool> done_{false};
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::mutex error_mutex_;
    std::exception_ptr error_;
};

}  // namespace

BatchScheduler::BatchScheduler(BatchOptions options, MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : &fallback_metrics_)
{
}

std::vector<BatchPairResult>
BatchScheduler::run(const std::vector<BatchJob>& jobs)
{
    Engine engine(options_, *metrics_, jobs);
    return engine.run();
}

}  // namespace darwin::batch
