/**
 * @file
 * Checkpoint journal for resumable batch runs.
 *
 * The manifest runner appends one JSONL line per terminally-finished
 * pair (clean, degraded, or quarantined — interrupted pairs are *not*
 * journaled, so they rerun). The first line is a header carrying a
 * config fingerprint; `--resume` refuses to reuse a journal whose
 * fingerprint differs from the current invocation's, because a changed
 * preset or pair list would silently mix outputs from two configs.
 *
 * Journal format (one JSON object per line):
 *
 *     {"journal":"darwin-wga-batch","version":1,"config":"<16 hex>"}
 *     {"pair":"p0","status":"clean","output":"p0.maf"}
 *     {"pair":"p3","status":"quarantined","reason":"injected"}
 *
 * Output files are written next to the journal via write_file_atomic
 * (tmp + rename), and the journal line is appended and flushed only
 * after the rename — so a journaled pair always has its final output on
 * disk, and a crash between the two leaves at worst a re-runnable pair.
 */
#ifndef DARWIN_BATCH_CHECKPOINT_H
#define DARWIN_BATCH_CHECKPOINT_H

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/quarantine.h"

namespace darwin::batch {

/** One journaled pair. */
struct JournalEntry {
    std::string pair;
    fault::PairStatus status = fault::PairStatus::Clean;
    std::string reason;  ///< fail_reason_name, for quarantined pairs
    std::string output;  ///< output filename (relative), when any
};

/**
 * Stable fingerprint of everything that shapes a run's output: the
 * canonical config string is hashed and rendered as 16 hex digits (a
 * thin alias of util/digest.h's fingerprint_hex, shared with the index
 * file header). Callers build the canonical string; keep it free of
 * fields that don't change output (thread count, queue sizes).
 */
std::string config_fingerprint(const std::string& canonical_config);

/** Write `content` to `path` via a same-directory tmp file + rename, so
 *  readers never observe a partial file. FatalError on any I/O error. */
void write_file_atomic(const std::string& path, const std::string& content);

/** Append-only JSONL journal of finished pairs. Thread-safe. */
class CheckpointJournal {
  public:
    /** Start a fresh journal (truncates any existing file). */
    static CheckpointJournal create(const std::string& path,
                                    const std::string& fingerprint);

    /**
     * Reopen an existing journal for `--resume`: validates the header
     * fingerprint (FatalError naming both fingerprints on mismatch; a
     * missing file FatalErrors with a hint to run without --resume) and
     * loads the completed set, then reopens for append.
     */
    static CheckpointJournal resume(const std::string& path,
                                    const std::string& fingerprint);

    CheckpointJournal(CheckpointJournal&&) = default;
    CheckpointJournal& operator=(CheckpointJournal&&) = default;

    /** Entries loaded by resume() (empty for create()). */
    const std::vector<JournalEntry>& resumed() const { return resumed_; }

    /** True when resume() saw a terminal entry for this pair. */
    bool completed(const std::string& pair) const;

    /** Append one entry and flush. */
    void record(const JournalEntry& entry);

    void close();

  private:
    CheckpointJournal() = default;

    std::string path_;
    std::ofstream out_;
    std::vector<JournalEntry> resumed_;
    std::unordered_map<std::string, fault::PairStatus> completed_;
    std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_CHECKPOINT_H
