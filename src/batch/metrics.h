/**
 * @file
 * Compatibility header: the metrics registry moved to src/obs/ (it is
 * shared by the batch engine, the serial pipeline, and the hw models).
 * Existing includes of "batch/metrics.h" keep working via these
 * aliases; new code should include "obs/metrics.h" directly.
 */
#ifndef DARWIN_BATCH_METRICS_H
#define DARWIN_BATCH_METRICS_H

#include "obs/metrics.h"

namespace darwin::batch {

using Counter = obs::Counter;
using Gauge = obs::Gauge;
using Histogram = obs::Histogram;
using MetricsRegistry = obs::MetricsRegistry;

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_METRICS_H
