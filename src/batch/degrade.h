/**
 * @file
 * Degraded-retry parameter policy.
 *
 * When a pair blows a budget the batch engine gives it one retry with
 * cheaper parameters before quarantining it: a narrower filter band, a
 * tighter GACT-X / ungapped X-drop, and a per-chunk seed-hit cap. The
 * transform lives here (not in the scheduler) so a serial run with
 * apply_degrade'd params is bit-identical to the batch engine's degraded
 * attempt — the degraded contract is testable outside the scheduler.
 */
#ifndef DARWIN_BATCH_DEGRADE_H
#define DARWIN_BATCH_DEGRADE_H

#include <cstddef>

#include "wga/params.h"

namespace darwin::batch {

/** Knobs of the degraded retry; defaults roughly quarter the DP work. */
struct DegradePolicy {
    /** Filter band half-width divisor (floored at min_band). */
    std::size_t band_divisor = 2;
    std::size_t min_band = 8;

    /** X-drop divisor for gactx.ydrop and ungapped_xdrop (floored at
     *  min_ydrop). */
    std::size_t ydrop_divisor = 2;
    align::Score min_ydrop = 100;

    /** DsoftParams::max_hits_per_chunk for the retry (0 keeps the
     *  original). */
    std::size_t max_hits_per_chunk = 256;
};

/** The degraded parameter set for one retry of `params`. */
wga::WgaParams apply_degrade(const wga::WgaParams& params,
                             const DegradePolicy& policy);

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_DEGRADE_H
