#include "batch/manifest.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::batch {

bool
valid_pair_name(const std::string& name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                        c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::vector<ManifestPair>
parse_manifest(const std::string& text, const std::string& path)
{
    std::vector<ManifestPair> pairs;
    std::unordered_set<std::string> seen;
    std::istringstream in(text);
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string body = trim(line);
        if (body.empty() || body[0] == '#')
            continue;
        std::istringstream fields(body);
        ManifestPair pair;
        pair.line = line_number;
        std::string extra;
        if (!(fields >> pair.name >> pair.target_path >> pair.query_path)) {
            fatal(strprintf("%s:%zu: manifest line needs "
                            "'name target.fa query.fa', got '%s'",
                            path.c_str(), line_number, body.c_str()));
        }
        if (fields >> extra) {
            fatal(strprintf("%s:%zu: unexpected extra field '%s' "
                            "(manifest lines are 'name target.fa "
                            "query.fa')",
                            path.c_str(), line_number, extra.c_str()));
        }
        if (!valid_pair_name(pair.name)) {
            fatal(strprintf("%s:%zu: pair name '%s' is not usable as an "
                            "output filename (use only letters, digits, "
                            "'.', '_', '-')",
                            path.c_str(), line_number, pair.name.c_str()));
        }
        if (!seen.insert(pair.name).second) {
            fatal(strprintf("%s:%zu: duplicate pair name '%s' (pair names "
                            "key the checkpoint journal and output files)",
                            path.c_str(), line_number, pair.name.c_str()));
        }
        pairs.push_back(std::move(pair));
    }
    if (pairs.empty())
        fatal(strprintf("%s: manifest has no entries", path.c_str()));
    return pairs;
}

std::vector<ManifestPair>
read_manifest_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot read manifest %s", path.c_str()));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_manifest(buffer.str(), path);
}

void
validate_pair_genomes(const ManifestPair& pair, const seq::Genome& target,
                      const seq::Genome& query)
{
    if (target.total_length() == 0) {
        fatal(strprintf("pair '%s': target %s has no sequence data",
                        pair.name.c_str(), pair.target_path.c_str()));
    }
    if (query.total_length() == 0) {
        fatal(strprintf("pair '%s': query %s has no sequence data",
                        pair.name.c_str(), pair.query_path.c_str()));
    }
}

}  // namespace darwin::batch
