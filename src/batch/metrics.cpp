#include "batch/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace darwin::batch {

void
Histogram::observe(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (samples_.size() < kMaxSamples)
        samples_.push_back(value);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return 0.0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

namespace {

/** Render a double as JSON (finite decimal; no NaN/Inf in output). */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "0";
    return strprintf("%.9g", v);
}

}  // namespace

void
MetricsRegistry::write_json(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, metric] : counters_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << metric->value();
        first = false;
    }
    out << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, metric] : gauges_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": {\"value\": " << metric->value()
            << ", \"high_water\": " << metric->high_water() << "}";
        first = false;
    }
    out << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, metric] : histograms_) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": {"
            << "\"count\": " << metric->count()
            << ", \"sum\": " << json_number(metric->sum())
            << ", \"mean\": " << json_number(metric->mean())
            << ", \"min\": " << json_number(metric->min())
            << ", \"max\": " << json_number(metric->max())
            << ", \"p50\": " << json_number(metric->quantile(0.50))
            << ", \"p90\": " << json_number(metric->quantile(0.90))
            << ", \"p99\": " << json_number(metric->quantile(0.99)) << "}";
        first = false;
    }
    out << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string
MetricsRegistry::to_json() const
{
    std::ostringstream out;
    write_json(out);
    return out.str();
}

}  // namespace darwin::batch
