/**
 * @file
 * Streaming batch-alignment engine: many (target, query) pairs driven
 * through seed -> filter -> extend -> chain as a *dataflow* rather than
 * a barrier pipeline.
 *
 * Each pair's query strand is cut into chunk-aligned shards (see
 * batch/shard.h). Work units flow through bounded WorkQueues between
 * stages, so filter candidates from shard i are being extended while
 * shard i+1 is still seeding, and the forward and reverse strands of a
 * pair are two independent streams instead of serial phases. A fixed
 * set of stage-agnostic workers drains the queues downstream-first,
 * which keeps the deepest pipeline stages hot and gives natural
 * backpressure end to end.
 *
 * Determinism: results are bit-identical to running each pair through
 * the serial WgaPipeline. Three structural properties guarantee this —
 * shard boundaries are D-SOFT-chunk aligned (seeding is chunk-local, so
 * the union of per-shard hits equals the serial hit set); per-shard
 * filter candidates are merged and re-sorted with the same canonical
 * order filter_all() uses; and each strand's extension runs as a single
 * task over that canonical order, preserving the anchor-absorption
 * semantics of the serial extension stage.
 *
 * Fault tolerance (see DESIGN.md "Fault tolerance & degradation"):
 * every pair runs under its own fault::CancelToken. An exception or
 * budget overrun in any stage fails only that pair — its remaining
 * tasks drain and are dropped while the rest of the batch proceeds. A
 * budget overrun earns one *degraded* retry (apply_degrade'd
 * parameters) before the pair is quarantined with a machine-readable
 * QuarantineRecord; a FatalError anywhere aborts the whole run, and
 * run() rethrows it with the pair id and stage attached. A
 * fault::request_shutdown() cancels every in-flight pair (status
 * Interrupted) so the CLI can checkpoint and exit.
 */
#ifndef DARWIN_BATCH_SCHEDULER_H
#define DARWIN_BATCH_SCHEDULER_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "batch/metrics.h"
#include "chain/chainer.h"
#include "fault/cancel.h"
#include "fault/degrade.h"
#include "fault/quarantine.h"
#include "seq/genome.h"
#include "wga/pipeline.h"

namespace darwin::index {
class IndexCache;
}

namespace darwin::batch {

/** The degrade policy is shared with the serve daemon's circuit
 *  breaker (fault/degrade.h); these aliases keep the historical
 *  batch:: spelling working. */
using DegradePolicy = fault::DegradePolicy;
using fault::apply_degrade;

/** One (target, query) alignment job of a batch manifest. */
struct BatchJob {
    std::string name;  ///< label used for outputs/metrics, e.g. "ce11-cb4"
    const seq::Genome* target = nullptr;
    const seq::Genome* query = nullptr;
};

/** Result for one manifest entry, in manifest order. */
struct BatchPairResult {
    std::string name;
    fault::PairStatus status = fault::PairStatus::Clean;
    /** Attempts consumed (2 when the degraded retry ran). */
    std::uint32_t attempts = 0;
    wga::WgaResult result;  ///< empty for quarantined/interrupted pairs
    /** Failure details; reason == None for clean pairs. */
    fault::QuarantineRecord quarantine;
};

/** Engine configuration. */
struct BatchOptions {
    wga::WgaParams params;
    chain::ChainParams chain_params;

    /** Worker threads; 0 means hardware_concurrency(). */
    std::size_t num_threads = 0;

    /** Query bp per shard (rounded up to the D-SOFT chunk size). */
    std::size_t shard_length = 1 << 18;

    /** Capacity of each inter-stage queue (backpressure bound). */
    std::size_t queue_capacity = 128;

    /** Per-pair budgets; default unlimited. The wall clock starts when
     *  the pair's first task begins executing, not when it is queued. */
    fault::Budget pair_budget;

    /** Give a budget-overrun pair one degraded retry before
     *  quarantining it. */
    bool degraded_retry = true;
    DegradePolicy degrade;

    /**
     * Bounded-memory mode: run each pair whole through
     * WgaPipeline::run_streaming — 2-bit packed storage, the seed
     * table built one band shard at a time, hits and candidates
     * through spill-or-backpressure channels — instead of the sharded
     * byte dataflow above. Results stay bit-identical (both modes
     * reproduce the serial pipeline exactly); what changes is the
     * residency envelope: no whole-target seed table and no
     * materialized per-shard candidate vectors, so the per-pair
     * footprint is bounded by `streaming_params` regardless of genome
     * size. Pair isolation, budgets, degraded retries and quarantine
     * work unchanged. The shared index cache is bypassed — shard
     * tables are transient by design. Requires gapped filter params
     * and dsoft.max_hits_per_chunk == 0 (run_streaming's contract;
     * FatalError otherwise).
     */
    bool streaming = false;
    wga::StreamingParams streaming_params;

    /**
     * Optional shared seed-index cache. When set (e.g. by a daemon that
     * also serves one-shot queries), the engine acquires target indexes
     * from it; when null, the engine uses a run-local cache sized to the
     * manifest. Either way, pairs sharing a target (by sequence digest)
     * build the index once — saved rebuilds surface as the
     * "batch.index.cache_hits" counter.
     */
    index::IndexCache* index_cache = nullptr;

    /**
     * Called once per pair, from a worker thread, the moment the pair
     * reaches a terminal status — so the runner can stream outputs and
     * journal entries instead of waiting for the whole batch. The
     * referenced result is the same object later returned by run().
     * A FatalError thrown by the callback aborts the run.
     */
    std::function<void(const BatchPairResult&)> on_pair_complete;
};

/** The batch engine. Construct once, run() one manifest at a time. */
class BatchScheduler {
  public:
    /**
     * @param metrics Optional registry for per-stage counters, queue
     *        depths, and latency histograms ("batch.*" names); pass
     *        nullptr to run unmetered (an internal registry is used).
     */
    explicit BatchScheduler(BatchOptions options,
                            MetricsRegistry* metrics = nullptr);

    const BatchOptions& options() const { return options_; }

    /**
     * Run every job in the manifest and return per-pair results in
     * manifest order. Jobs may share Genome objects (their flattened
     * forms are materialized up front, before workers start). Per-pair
     * failures never throw — they surface as PairStatus in the results;
     * only a FatalError (annotated with pair and stage when one was
     * active) propagates, after the pipeline shuts down cleanly.
     */
    std::vector<BatchPairResult> run(const std::vector<BatchJob>& jobs);

  private:
    BatchOptions options_;
    MetricsRegistry* metrics_;
    MetricsRegistry fallback_metrics_;
};

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_SCHEDULER_H
