#include "batch/shard.h"

#include <algorithm>

#include "seed/seed_pattern.h"

namespace darwin::batch {

std::vector<Shard>
make_shards(std::size_t sequence_length, std::size_t shard_length,
            std::size_t alignment, std::size_t margin)
{
    std::vector<Shard> shards;
    if (sequence_length == 0)
        return shards;
    if (alignment == 0)
        alignment = 1;
    // Round the shard size up to a whole number of aligned units.
    std::size_t step =
        std::max<std::size_t>(shard_length, alignment);
    step = (step + alignment - 1) / alignment * alignment;

    for (std::size_t begin = 0; begin < sequence_length; begin += step) {
        Shard shard;
        shard.index = shards.size();
        shard.begin = begin;
        shard.end = std::min(sequence_length, begin + step);
        shard.margin_begin = begin > margin ? begin - margin : 0;
        shard.margin_end = std::min(sequence_length, shard.end + margin);
        shards.push_back(shard);
    }
    return shards;
}

std::size_t
default_shard_margin(const wga::WgaParams& params)
{
    return seed::SeedPattern(params.seed_pattern).span() +
           params.filter_tile;
}

}  // namespace darwin::batch
