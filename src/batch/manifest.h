/**
 * @file
 * Hardened manifest parsing for `darwin-wga-batch`.
 *
 * A manifest is one pair per line, `name target.fa query.fa`
 * (whitespace-separated; '#' starts a comment). Parsing is strict:
 * wrong field counts, duplicate pair names, and names unusable as
 * output filenames all produce one FatalError naming the file and line
 * — never a silent skip. Parsing is split from genome loading so
 * `--resume` can skip completed pairs without paying their FASTA I/O.
 */
#ifndef DARWIN_BATCH_MANIFEST_H
#define DARWIN_BATCH_MANIFEST_H

#include <string>
#include <vector>

#include "seq/genome.h"

namespace darwin::batch {

/** One manifest line, before genome loading. */
struct ManifestPair {
    std::string name;
    std::string target_path;
    std::string query_path;
    std::size_t line = 0;  ///< 1-based manifest line, for diagnostics
};

/**
 * True when `name` is safe as a pair id: non-empty, and only
 * [A-Za-z0-9._-] so `<name>.maf` is a plain filename on any filesystem.
 */
bool valid_pair_name(const std::string& name);

/**
 * Parse manifest text. `path` is used only for diagnostics. FatalError
 * on: a line without exactly three fields, an invalid or duplicate pair
 * name, or no entries at all.
 */
std::vector<ManifestPair> parse_manifest(const std::string& text,
                                         const std::string& path);

/** Read and parse a manifest file; FatalError when unreadable. */
std::vector<ManifestPair> read_manifest_file(const std::string& path);

/**
 * Check a loaded pair's genomes before admitting it to the batch:
 * FatalError (naming the pair and the offending file) when either
 * genome has no sequence data.
 */
void validate_pair_genomes(const ManifestPair& pair,
                           const seq::Genome& target,
                           const seq::Genome& query);

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_MANIFEST_H
