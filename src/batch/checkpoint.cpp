#include "batch/checkpoint.h"

#include <cstdio>
#include <filesystem>

#include "util/digest.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::batch {

namespace {

/**
 * Extract the string value of `"key":"..."` from a journal line. The
 * journal only ever holds strings we wrote with json_quote over names
 * validated to exclude quotes/backslashes, so a non-escaping scan is
 * exact for this format.
 */
std::string
json_field(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\":\"";
    const auto at = line.find(needle);
    if (at == std::string::npos)
        return "";
    const auto begin = at + needle.size();
    const auto end = line.find('"', begin);
    if (end == std::string::npos)
        return "";
    return line.substr(begin, end - begin);
}

fault::PairStatus
parse_status(const std::string& text, const std::string& path)
{
    if (text == "clean")
        return fault::PairStatus::Clean;
    if (text == "degraded")
        return fault::PairStatus::Degraded;
    if (text == "quarantined")
        return fault::PairStatus::Quarantined;
    fatal(strprintf("%s: unknown journal status '%s'", path.c_str(),
                    text.c_str()));
}

}  // namespace

std::string
config_fingerprint(const std::string& canonical_config)
{
    return fingerprint_hex(canonical_config);
}

void
write_file_atomic(const std::string& path, const std::string& content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            fatal(strprintf("cannot write %s", tmp.c_str()));
        out << content;
        out.flush();
        if (!out)
            fatal(strprintf("error writing %s", tmp.c_str()));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        fatal(strprintf("cannot rename %s -> %s: %s", tmp.c_str(),
                        path.c_str(), ec.message().c_str()));
    }
}

CheckpointJournal
CheckpointJournal::create(const std::string& path,
                          const std::string& fingerprint)
{
    CheckpointJournal journal;
    journal.path_ = path;
    journal.out_.open(path, std::ios::trunc);
    if (!journal.out_)
        fatal(strprintf("cannot write journal: %s", path.c_str()));
    journal.out_ << strprintf(
        "{\"journal\":\"darwin-wga-batch\",\"version\":1,"
        "\"config\":\"%s\"}\n",
        fingerprint.c_str());
    journal.out_.flush();
    return journal;
}

CheckpointJournal
CheckpointJournal::resume(const std::string& path,
                          const std::string& fingerprint)
{
    std::ifstream in(path);
    if (!in) {
        fatal(strprintf("--resume: no journal at %s (run without --resume "
                        "to start fresh)",
                        path.c_str()));
    }
    std::string line;
    if (!std::getline(in, line) || json_field(line, "journal").empty())
        fatal(strprintf("--resume: %s is not a batch journal",
                        path.c_str()));
    const std::string recorded = json_field(line, "config");
    if (recorded != fingerprint) {
        fatal(strprintf("--resume: journal %s was written by an "
                        "incompatible config (journal %s, current %s); "
                        "rerun without --resume or restore the original "
                        "flags",
                        path.c_str(), recorded.c_str(),
                        fingerprint.c_str()));
    }

    CheckpointJournal journal;
    journal.path_ = path;
    while (std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        JournalEntry entry;
        entry.pair = json_field(line, "pair");
        if (entry.pair.empty())
            fatal(strprintf("%s: journal line without a pair id: %s",
                            path.c_str(), line.c_str()));
        entry.status = parse_status(json_field(line, "status"), path);
        entry.reason = json_field(line, "reason");
        entry.output = json_field(line, "output");
        journal.completed_[entry.pair] = entry.status;
        journal.resumed_.push_back(std::move(entry));
    }
    in.close();

    journal.out_.open(path, std::ios::app);
    if (!journal.out_)
        fatal(strprintf("cannot append to journal: %s", path.c_str()));
    return journal;
}

bool
CheckpointJournal::completed(const std::string& pair) const
{
    return completed_.count(pair) != 0;
}

void
CheckpointJournal::record(const JournalEntry& entry)
{
    std::lock_guard<std::mutex> lock(*mutex_);
    if (!out_.is_open())
        return;
    std::string line = strprintf(
        "{\"pair\":%s,\"status\":\"%s\"",
        json_quote(entry.pair).c_str(),
        fault::pair_status_name(entry.status));
    if (!entry.reason.empty())
        line += strprintf(",\"reason\":%s", json_quote(entry.reason).c_str());
    if (!entry.output.empty())
        line += strprintf(",\"output\":%s", json_quote(entry.output).c_str());
    line += "}\n";
    out_ << line;
    out_.flush();
    completed_[entry.pair] = entry.status;
}

void
CheckpointJournal::close()
{
    std::lock_guard<std::mutex> lock(*mutex_);
    if (out_.is_open())
        out_.close();
}

}  // namespace darwin::batch
