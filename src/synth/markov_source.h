/**
 * @file
 * Ancestral genome generation with realistic low-order statistics.
 *
 * Real genomes have pronounced dinucleotide structure (e.g. CpG depletion)
 * that the paper's FPR null model explicitly preserves when shuffling.
 * Generating the *ancestor* from an order-1 Markov chain gives our
 * synthetic genomes the same property, so the shuffle-based noise analysis
 * is meaningful.
 */
#ifndef DARWIN_SYNTH_MARKOV_SOURCE_H
#define DARWIN_SYNTH_MARKOV_SOURCE_H

#include <array>
#include <cstdint>

#include "seq/sequence.h"
#include "util/rng.h"

namespace darwin::synth {

/** Order-1 Markov generator over {A,C,G,T}. */
class MarkovSource {
  public:
    using Matrix = std::array<std::array<double, 4>, 4>;

    /**
     * @param initial Stationary-ish initial base distribution.
     * @param transition Row-stochastic conditional P(next | current).
     */
    MarkovSource(const std::array<double, 4>& initial,
                 const Matrix& transition);

    /** A genome-like default: ~41% GC with CpG depletion. */
    static MarkovSource genome_like();

    /** Uniform i.i.d. baseline (order-0), useful in tests. */
    static MarkovSource uniform();

    /** Generate a sequence of the given length. */
    seq::Sequence generate(std::size_t length, Rng& rng,
                           const std::string& name = "anc") const;

  private:
    std::array<double, 4> initial_;
    Matrix transition_;
};

}  // namespace darwin::synth

#endif  // DARWIN_SYNTH_MARKOV_SOURCE_H
