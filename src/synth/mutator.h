/**
 * @file
 * The molecular-evolution model: per-branch mutation of a sequence.
 *
 * The paper's central observation (Fig. 2) is that indel density grows
 * with phylogenetic distance, which is precisely what breaks ungapped
 * filtering. This model therefore controls, per branch:
 *   - substitution rate with a transition bias (A<->G, C<->T favoured),
 *   - indel rate with a short-geometric + heavy-tail length mixture
 *     (short polymerase slippage events plus rarer structural indels),
 *   - purifying selection: positions inside "conserved" (exon-like)
 *     annotations mutate at strongly reduced rates.
 *
 * Mutation is applied position-by-position so annotation intervals can be
 * mapped exactly from ancestor coordinates to descendant coordinates.
 */
#ifndef DARWIN_SYNTH_MUTATOR_H
#define DARWIN_SYNTH_MUTATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "seq/interval.h"
#include "seq/sequence.h"
#include "util/rng.h"

namespace darwin::synth {

/** Parameters for one branch of evolution. */
struct BranchParams {
    /** Expected substitutions per neutral site on this branch. */
    double substitutions_per_site = 0.1;

    /** P(substitution is a transition); 2/3 corresponds to ti/tv = 2. */
    double transition_fraction = 2.0 / 3.0;

    /** Expected indel *events* per neutral site. */
    double indel_rate_per_site = 0.012;

    /** Geometric length parameter for short indels (mean ≈ 1/p). */
    double short_indel_p = 0.40;

    /** Fraction of indel events drawn from the heavy tail. */
    double long_indel_fraction = 0.06;

    /** Power-law exponent for heavy-tail indel lengths. */
    double long_indel_alpha = 1.5;

    /** Maximum heavy-tail indel length (bp). */
    std::uint64_t long_indel_max = 400;

    /** Multiplier on substitution rate inside conserved annotations. */
    double conserved_sub_factor = 0.15;

    /** Multiplier on indel rate inside conserved annotations. */
    double conserved_indel_factor = 0.02;
};

/** What kind of segment an annotation marks. */
enum class AnnotationKind : std::uint8_t {
    Exon,    ///< planted orthologous exon (ground truth for Table III)
    Island,  ///< alignable island: moderately conserved background
};

/**
 * A named rate-class segment on a single sequence.
 *
 * Real genomes are mosaics: most of the sequence turns over at the
 * neutral rate (unalignable between distant species), interspersed with
 * alignable islands under varying constraint and, within them, strongly
 * conserved exons. `sub_factor`/`indel_factor` scale the branch's neutral
 * rates inside the segment; negative values fall back to the
 * BranchParams conserved_* factors (the strongly-conserved default).
 */
struct Annotation {
    std::string name;
    seq::Interval interval;
    AnnotationKind kind = AnnotationKind::Exon;
    double sub_factor = -1.0;
    double indel_factor = -1.0;
};

/** Result of mutating one sequence. */
struct MutationResult {
    seq::Sequence sequence;                ///< the descendant sequence
    std::vector<Annotation> annotations;   ///< intervals in descendant coords
    std::uint64_t substitutions = 0;       ///< applied substitution count
    std::uint64_t insertion_events = 0;
    std::uint64_t deletion_events = 0;
    std::uint64_t inserted_bases = 0;
    std::uint64_t deleted_bases = 0;
};

/** Applies BranchParams to sequences, tracking annotation coordinates. */
class Mutator {
  public:
    explicit Mutator(BranchParams params);

    const BranchParams& params() const { return params_; }

    /**
     * Evolve `ancestor` along one branch.
     *
     * @param ancestor     The ancestral sequence.
     * @param annotations  Conserved segments in ancestor coordinates;
     *                     must be sorted and non-overlapping.
     * @param rng          Random stream (deterministic given the seed).
     */
    MutationResult mutate(const seq::Sequence& ancestor,
                          const std::vector<Annotation>& annotations,
                          Rng& rng) const;

  private:
    std::uint64_t draw_indel_length(Rng& rng) const;
    std::uint8_t substitute(std::uint8_t base, Rng& rng) const;

    BranchParams params_;
};

}  // namespace darwin::synth

#endif  // DARWIN_SYNTH_MUTATOR_H
