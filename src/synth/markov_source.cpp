#include "synth/markov_source.h"

#include <cmath>

#include "util/logging.h"

namespace darwin::synth {

namespace {

void
check_distribution(const std::array<double, 4>& dist, const char* what)
{
    double total = 0.0;
    for (double p : dist) {
        require(p >= 0.0, "MarkovSource: negative probability");
        total += p;
    }
    if (std::abs(total - 1.0) > 1e-6)
        fatal(std::string("MarkovSource: ") + what + " does not sum to 1");
}

std::uint8_t
sample(const std::array<double, 4>& dist, Rng& rng)
{
    double r = rng.uniform_double();
    for (int b = 0; b < 4; ++b) {
        r -= dist[static_cast<std::size_t>(b)];
        if (r < 0.0)
            return static_cast<std::uint8_t>(b);
    }
    return 3;
}

}  // namespace

MarkovSource::MarkovSource(const std::array<double, 4>& initial,
                           const Matrix& transition)
    : initial_(initial), transition_(transition)
{
    check_distribution(initial_, "initial distribution");
    for (const auto& row : transition_)
        check_distribution(row, "transition row");
}

MarkovSource
MarkovSource::genome_like()
{
    // Roughly invertebrate-like composition: AT-rich with CpG depletion
    // (row C has a depressed G column) and mild homopolymer affinity.
    const std::array<double, 4> initial = {0.30, 0.20, 0.20, 0.30};
    const Matrix transition = {{
        // next:   A      C      G      T        current:
        {{0.35, 0.17, 0.20, 0.28}},            // A
        {{0.32, 0.24, 0.06, 0.38}},            // C (CpG depleted)
        {{0.28, 0.21, 0.24, 0.27}},            // G
        {{0.25, 0.18, 0.22, 0.35}},            // T
    }};
    return MarkovSource(initial, transition);
}

MarkovSource
MarkovSource::uniform()
{
    const std::array<double, 4> initial = {0.25, 0.25, 0.25, 0.25};
    Matrix transition{};
    for (auto& row : transition)
        row = {0.25, 0.25, 0.25, 0.25};
    return MarkovSource(initial, transition);
}

seq::Sequence
MarkovSource::generate(std::size_t length, Rng& rng,
                       const std::string& name) const
{
    std::vector<std::uint8_t> codes;
    codes.reserve(length);
    if (length == 0)
        return seq::Sequence(name, std::move(codes));
    std::uint8_t current = sample(initial_, rng);
    codes.push_back(current);
    for (std::size_t i = 1; i < length; ++i) {
        current = sample(transition_[current], rng);
        codes.push_back(current);
    }
    return seq::Sequence(name, std::move(codes));
}

}  // namespace darwin::synth
