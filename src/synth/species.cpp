#include "synth/species.h"

#include "util/logging.h"

namespace darwin::synth {

std::vector<SpeciesPairSpec>
paper_species_pairs()
{
    // `distance` is the *neutral* (background) divergence; the alignable
    // islands and exons evolve at the AncestorConfig factor ranges below
    // it, so the distance measured over aligned columns (our Fig. 8
    // analogue) comes out near the paper's tree. The ordering matters
    // more than the absolute values: the roundworm pair's background is
    // effectively saturated (unalignable), dm6-dp4 marginal, and the two
    // close flies alignable nearly genome-wide — which is what makes the
    // Table III sensitivity gaps grow with divergence.
    return {
        {"ce11-cb4", "ce11s", "cb4s", 1.40, 0.080, 0.22, 0.52, 0.55, 1.00},
        {"dm6-dp4", "dm6s", "dp4s", 1.00, 0.048, 0.22, 0.62, 0.45, 0.90},
        {"dm6-droYak2", "dm6s", "droYak2s", 0.50, 0.024, 0.25, 0.75, 0.30,
         1.00},
        {"dm6-droSim1", "dm6s", "droSim1s", 0.16, 0.010, 0.25, 0.75, 0.30,
         1.00},
    };
}

SpeciesPairSpec
find_species_pair(const std::string& pair_name)
{
    for (const auto& spec : paper_species_pairs()) {
        if (spec.pair_name == pair_name)
            return spec;
    }
    fatal("unknown species pair: " + pair_name +
          " (expected one of ce11-cb4, dm6-dp4, dm6-droYak2, dm6-droSim1)");
}

SpeciesPair
make_species_pair(const SpeciesPairSpec& spec, const AncestorConfig& config,
                  std::uint64_t seed)
{
    Rng rng(seed);
    const MarkovSource source = MarkovSource::genome_like();
    AncestorConfig pair_config = config;
    pair_config.island_sub_factor_min = spec.island_sub_factor_min;
    pair_config.island_sub_factor_max = spec.island_sub_factor_max;
    pair_config.island_indel_factor_min = spec.island_indel_factor_min;
    pair_config.island_indel_factor_max = spec.island_indel_factor_max;
    AnnotatedGenome ancestor =
        make_ancestor(spec.pair_name + "_anc", pair_config, source, rng);

    BranchParams branch;
    branch.substitutions_per_site = spec.distance / 2.0;
    branch.indel_rate_per_site = spec.indel_rate_per_site / 2.0;
    branch.long_indel_fraction = 0.04;

    SpeciesPair pair;
    pair.spec = spec;
    Rng target_rng = rng.fork();
    Rng query_rng = rng.fork();
    pair.target = evolve_genome(ancestor, spec.target_name, branch,
                                target_rng, &pair.target_branch);
    pair.query = evolve_genome(ancestor, spec.query_name, branch,
                               query_rng, &pair.query_branch);
    return pair;
}

}  // namespace darwin::synth
