/**
 * @file
 * Species-pair factory: the four whole-genome-alignment workloads of the
 * paper (Table I / Fig. 8), realized as synthetic analogues.
 *
 * Each paper pair is reproduced by evolving two descendants from a common
 * ancestor with a total phylogenetic distance chosen to match the paper's
 * Fig. 8 tree (substitutions/site between the pair). Genome sizes default
 * to a software-feasible scale; the *ratios* the paper reports are
 * size-independent (DESIGN.md §1).
 */
#ifndef DARWIN_SYNTH_SPECIES_H
#define DARWIN_SYNTH_SPECIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "synth/evolver.h"

namespace darwin::synth {

/** Static description of one paper species pair. */
struct SpeciesPairSpec {
    std::string pair_name;      ///< e.g. "ce11-cb4"
    std::string target_name;    ///< synthetic analogue of the target
    std::string query_name;     ///< synthetic analogue of the query
    /** Neutral (background) pairwise divergence in substitutions/site,
     *  both branches combined. Alignable islands and exons evolve at a
     *  fraction of this (AncestorConfig factor ranges), so the distance
     *  observed over *aligned* columns is considerably smaller. */
    double distance = 0.1;
    /** Neutral indel event rate per site (both branches combined). */
    double indel_rate_per_site = 0.012;

    /** Island conservation ranges for this pair (fractions of the
     *  neutral rates). They place the pair's alignable islands in the
     *  identity/indel-density regime where the paper's aligners operate:
     *  mostly identity 55-85% with indels every ~15-60 bp. */
    double island_sub_factor_min = 0.25;
    double island_sub_factor_max = 0.75;
    double island_indel_factor_min = 0.30;
    double island_indel_factor_max = 1.00;
};

/** A fully materialized workload: two genomes + ground-truth annotations. */
struct SpeciesPair {
    SpeciesPairSpec spec;
    AnnotatedGenome target;
    AnnotatedGenome query;
    BranchStats target_branch;
    BranchStats query_branch;
};

/**
 * The paper's four evaluation pairs in Table V order:
 * ce11-cb4, dm6-dp4, dm6-droYak2, dm6-droSim1.
 */
std::vector<SpeciesPairSpec> paper_species_pairs();

/** Look up a paper pair spec by name; fatal() if unknown. */
SpeciesPairSpec find_species_pair(const std::string& pair_name);

/**
 * Materialize a species pair: generate the ancestor and evolve both
 * branches (distance split evenly).
 *
 * @param spec   Which pair to build.
 * @param config Ancestor shape (genome size, exon density).
 * @param seed   Deterministic seed; same seed -> identical pair.
 */
SpeciesPair make_species_pair(const SpeciesPairSpec& spec,
                              const AncestorConfig& config,
                              std::uint64_t seed);

}  // namespace darwin::synth

#endif  // DARWIN_SYNTH_SPECIES_H
