#include "synth/evolver.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::synth {

namespace {

double
uniform_in(Rng& rng, double lo, double hi)
{
    return lo + rng.uniform_double() * (hi - lo);
}

/** Geometric length with the given mean (>= 1). */
std::uint64_t
geometric_length(Rng& rng, std::uint64_t mean)
{
    if (mean <= 1)
        return 1;
    return 1 + rng.geometric(1.0 / static_cast<double>(mean));
}

/** Apply `age` substitutions/site (plus light indels) to a copy. */
std::vector<std::uint8_t>
age_copy(const seq::Sequence& element, double age, Rng& rng)
{
    BranchParams params;
    params.substitutions_per_site = age;
    params.indel_rate_per_site = std::min(0.2, age * 0.05);
    params.long_indel_fraction = 0.0;
    Mutator mutator(params);
    return mutator.mutate(element, {}, rng).sequence.codes();
}

/** Shared state for island/repeat placement over one chromosome. */
struct IslandPlanter {
    const AncestorConfig& config;
    const std::vector<seq::Sequence>& elements;  ///< repeat families
    std::vector<std::uint8_t>& codes;            ///< chromosome being built
    Rng& rng;
    std::size_t chrom_index = 0;
    std::size_t island_counter = 0;
    std::size_t repeat_counter = 0;

    /**
     * Fill the gap [gap_start, gap_end) between exons with alignable
     * islands; a fraction of the slots host diverged repeat-family
     * copies (written over the background sequence).
     */
    void
    fill(std::uint64_t gap_start, std::uint64_t gap_end,
         std::vector<Annotation>* out)
    {
        if (config.island_fraction <= 0.0 ||
            config.island_mean_length == 0)
            return;
        const double f = std::min(config.island_fraction, 0.95);
        const auto background_mean = static_cast<std::uint64_t>(
            static_cast<double>(config.island_mean_length) * (1.0 - f) /
            f);
        std::uint64_t pos = gap_start;
        for (;;) {
            pos += geometric_length(
                rng, std::max<std::uint64_t>(background_mean, 1));
            if (pos >= gap_end)
                return;
            const std::uint64_t room = gap_end - pos;
            const bool as_repeat =
                !elements.empty() &&
                rng.chance(config.repeat_island_fraction);
            Annotation island;
            island.kind = AnnotationKind::Island;
            std::uint64_t len = 0;
            if (as_repeat) {
                const std::size_t family =
                    rng.uniform(elements.size());
                const double age = uniform_in(rng, config.repeat_age_min,
                                              config.repeat_age_max);
                const auto copy =
                    age_copy(elements[family], age, rng);
                len = std::min<std::uint64_t>(copy.size(), room);
                if (len >= 100) {
                    std::copy(copy.begin(),
                              copy.begin() +
                                  static_cast<std::ptrdiff_t>(len),
                              codes.begin() +
                                  static_cast<std::ptrdiff_t>(pos));
                    island.name = strprintf(
                        "chr%zu_rep%zu_fam%zu", chrom_index + 1,
                        repeat_counter++, family);
                    island.sub_factor =
                        uniform_in(rng, config.repeat_sub_factor_min,
                                   config.repeat_sub_factor_max);
                    island.indel_factor =
                        uniform_in(rng, config.repeat_indel_factor_min,
                                   config.repeat_indel_factor_max);
                }
            } else {
                len = std::min<std::uint64_t>(
                    geometric_length(rng, config.island_mean_length),
                    room);
                if (len >= 50) {
                    island.name =
                        strprintf("chr%zu_island%zu", chrom_index + 1,
                                  island_counter++);
                    island.sub_factor =
                        uniform_in(rng, config.island_sub_factor_min,
                                   config.island_sub_factor_max);
                    island.indel_factor =
                        uniform_in(rng, config.island_indel_factor_min,
                                   config.island_indel_factor_max);
                }
            }
            if (!island.name.empty()) {
                island.interval = {pos, pos + len};
                out->push_back(std::move(island));
            }
            pos += len;
        }
    }
};

}  // namespace

std::size_t
AnnotatedGenome::total_exons() const
{
    std::size_t total = 0;
    for (const auto& per_chrom : annotations) {
        for (const auto& ann : per_chrom) {
            if (ann.kind == AnnotationKind::Exon)
                ++total;
        }
    }
    return total;
}

AnnotatedGenome
make_ancestor(const std::string& name, const AncestorConfig& config,
              const MarkovSource& source, Rng& rng)
{
    require(config.exon_min_length > 0 &&
            config.exon_min_length <= config.exon_max_length,
            "make_ancestor: bad exon length range");

    // Repeat family elements shared by every chromosome.
    std::vector<seq::Sequence> elements;
    for (std::size_t family = 0; family < config.repeat_families;
         ++family) {
        const auto len = static_cast<std::size_t>(rng.uniform_range(
            static_cast<std::int64_t>(config.repeat_element_min_length),
            static_cast<std::int64_t>(config.repeat_element_max_length)));
        elements.push_back(source.generate(
            len, rng, strprintf("%s_fam%zu", name.c_str(), family)));
    }

    AnnotatedGenome out;
    out.genome.set_name(name);
    for (std::size_t c = 0; c < config.num_chromosomes; ++c) {
        seq::Sequence chrom = source.generate(
            config.chromosome_length, rng,
            strprintf("%s_chr%zu", name.c_str(), c + 1));

        // Exons go on a jittered grid (non-overlapping by construction);
        // the gaps between them are filled with alignable islands and
        // repeat copies.
        std::vector<Annotation> exons;
        const std::size_t want = config.exons_per_chromosome;
        if (want > 0 && chrom.size() > config.exon_max_length * 2) {
            const std::size_t stride = chrom.size() / want;
            for (std::size_t e = 0; e < want; ++e) {
                const std::uint64_t len = static_cast<std::uint64_t>(
                    rng.uniform_range(
                        static_cast<std::int64_t>(config.exon_min_length),
                        static_cast<std::int64_t>(config.exon_max_length)));
                if (stride <= len + 2)
                    break;
                const std::size_t slack = stride - len - 1;
                const std::size_t start =
                    e * stride + rng.uniform(std::max<std::size_t>(slack, 1));
                if (start + len > chrom.size())
                    break;
                Annotation exon;
                exon.name = strprintf("%s_chr%zu_exon%zu", name.c_str(),
                                      c + 1, e);
                exon.interval = {start, start + len};
                exon.kind = AnnotationKind::Exon;
                exon.sub_factor =
                    uniform_in(rng, config.exon_sub_factor_min,
                               config.exon_sub_factor_max);
                exon.indel_factor =
                    uniform_in(rng, config.exon_indel_factor_min,
                               config.exon_indel_factor_max);
                exons.push_back(std::move(exon));
            }
        }

        std::vector<Annotation> annotations;
        IslandPlanter planter{config, elements, chrom.codes(), rng, c};
        std::uint64_t cursor = 0;
        for (auto& exon : exons) {
            planter.fill(cursor, exon.interval.start, &annotations);
            cursor = exon.interval.end;
            annotations.push_back(std::move(exon));
        }
        planter.fill(cursor, chrom.size(), &annotations);

        out.genome.add_chromosome(std::move(chrom));
        out.annotations.push_back(std::move(annotations));
    }
    return out;
}

AnnotatedGenome
evolve_genome(const AnnotatedGenome& ancestor,
              const std::string& descendant_name,
              const BranchParams& params, Rng& rng, BranchStats* stats)
{
    Mutator mutator(params);
    AnnotatedGenome out;
    out.genome.set_name(descendant_name);
    for (std::size_t c = 0; c < ancestor.genome.num_chromosomes(); ++c) {
        MutationResult result = mutator.mutate(
            ancestor.genome.chromosome(c), ancestor.annotations[c], rng);
        result.sequence.set_name(strprintf("%s_chr%zu",
                                           descendant_name.c_str(), c + 1));
        if (stats) {
            stats->substitutions += result.substitutions;
            stats->insertion_events += result.insertion_events;
            stats->deletion_events += result.deletion_events;
            stats->inserted_bases += result.inserted_bases;
            stats->deleted_bases += result.deleted_bases;
        }
        out.genome.add_chromosome(std::move(result.sequence));
        out.annotations.push_back(std::move(result.annotations));
    }
    return out;
}

}  // namespace darwin::synth
