#include "synth/distance.h"

#include <cmath>
#include <limits>

namespace darwin::synth {

double
AlignedColumnCounts::mismatch_fraction() const
{
    const std::uint64_t n = total();
    return n ? static_cast<double>(mismatches) / static_cast<double>(n)
             : 0.0;
}

double
jukes_cantor_distance(double mismatch_fraction)
{
    if (mismatch_fraction <= 0.0)
        return 0.0;
    const double arg = 1.0 - 4.0 / 3.0 * mismatch_fraction;
    if (arg <= 0.0)
        return std::numeric_limits<double>::infinity();
    return -0.75 * std::log(arg);
}

double
jukes_cantor_distance(const AlignedColumnCounts& counts)
{
    return jukes_cantor_distance(counts.mismatch_fraction());
}

}  // namespace darwin::synth
