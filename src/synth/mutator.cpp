#include "synth/mutator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace darwin::synth {

namespace {

/**
 * Convert a branch length (substitutions/site) into the probability that a
 * site is observed mutated, correcting for multiple hits (Jukes-Cantor).
 */
double
observable_substitution_probability(double subs_per_site)
{
    return 0.75 * (1.0 - std::exp(-4.0 / 3.0 * subs_per_site));
}

/** Sweeps annotation boundaries while ancestor coordinates advance. */
class AnnotationMapper {
  public:
    AnnotationMapper(const std::vector<Annotation>& annotations)
        : annotations_(annotations), out_(annotations)
    {
    }

    /**
     * Note that the ancestor cursor has reached `ancestor_pos` and the
     * output currently holds `out_pos` bases. Must be called with
     * non-decreasing ancestor_pos.
     */
    void
    advance(std::size_t ancestor_pos, std::size_t out_pos)
    {
        while (next_start_ < annotations_.size() &&
               annotations_[next_start_].interval.start <= ancestor_pos) {
            out_[next_start_].interval.start = out_pos;
            ++next_start_;
        }
        while (next_end_ < annotations_.size() &&
               annotations_[next_end_].interval.end <= ancestor_pos) {
            out_[next_end_].interval.end = out_pos;
            ++next_end_;
        }
    }

    /** Finalize at end of sequence. */
    std::vector<Annotation>
    finish(std::size_t ancestor_len, std::size_t out_len)
    {
        advance(ancestor_len, out_len);
        // Any annotation whose end was never crossed ends at out_len.
        for (std::size_t i = next_end_; i < annotations_.size(); ++i)
            out_[i].interval.end = out_len;
        return std::move(out_);
    }

    /**
     * Index of the (sorted, non-overlapping) annotation containing
     * ancestor_pos, or npos.
     */
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t
    containing(std::size_t ancestor_pos)
    {
        while (cursor_ < annotations_.size() &&
               annotations_[cursor_].interval.end <= ancestor_pos)
            ++cursor_;
        if (cursor_ < annotations_.size() &&
            annotations_[cursor_].interval.start <= ancestor_pos &&
            ancestor_pos < annotations_[cursor_].interval.end)
            return cursor_;
        return npos;
    }

  private:
    const std::vector<Annotation>& annotations_;
    std::vector<Annotation> out_;
    std::size_t next_start_ = 0;
    std::size_t next_end_ = 0;
    std::size_t cursor_ = 0;
};

}  // namespace

Mutator::Mutator(BranchParams params) : params_(params)
{
    require(params_.substitutions_per_site >= 0.0,
            "Mutator: negative substitution rate");
    require(params_.indel_rate_per_site >= 0.0 &&
            params_.indel_rate_per_site < 1.0,
            "Mutator: indel rate out of range");
    require(params_.transition_fraction >= 0.0 &&
            params_.transition_fraction <= 1.0,
            "Mutator: transition fraction out of range");
}

std::uint64_t
Mutator::draw_indel_length(Rng& rng) const
{
    if (rng.chance(params_.long_indel_fraction)) {
        return rng.zipf(params_.long_indel_alpha,
                        std::max<std::uint64_t>(params_.long_indel_max, 1));
    }
    return 1 + rng.geometric(params_.short_indel_p);
}

std::uint8_t
Mutator::substitute(std::uint8_t base, Rng& rng) const
{
    if (!seq::is_concrete(base))
        return base;
    if (rng.chance(params_.transition_fraction))
        return seq::transition_partner(base);
    // Pick one of the two transversion targets uniformly.
    const std::uint8_t partner = seq::transition_partner(base);
    std::uint8_t options[2];
    int count = 0;
    for (std::uint8_t b = 0; b < seq::kNumBases; ++b) {
        if (b != base && b != partner)
            options[count++] = b;
    }
    return options[rng.uniform(2)];
}

MutationResult
Mutator::mutate(const seq::Sequence& ancestor,
                const std::vector<Annotation>& annotations,
                Rng& rng) const
{
    for (std::size_t i = 1; i < annotations.size(); ++i) {
        require(annotations[i - 1].interval.end <=
                annotations[i].interval.start,
                "Mutator: annotations must be sorted and non-overlapping");
    }

    // Per-annotation rates (annotation factors override the defaults).
    const double p_sub_neutral =
        observable_substitution_probability(params_.substitutions_per_site);
    const double p_indel_neutral = params_.indel_rate_per_site;
    std::vector<double> p_sub_ann(annotations.size());
    std::vector<double> p_indel_ann(annotations.size());
    for (std::size_t a = 0; a < annotations.size(); ++a) {
        const double sf = annotations[a].sub_factor >= 0.0
                              ? annotations[a].sub_factor
                              : params_.conserved_sub_factor;
        const double inf = annotations[a].indel_factor >= 0.0
                               ? annotations[a].indel_factor
                               : params_.conserved_indel_factor;
        p_sub_ann[a] = observable_substitution_probability(
            params_.substitutions_per_site * sf);
        p_indel_ann[a] =
            std::min(0.9, params_.indel_rate_per_site * inf);
    }

    MutationResult result;
    auto& out = result.sequence.codes();
    out.reserve(ancestor.size() + ancestor.size() / 16);
    AnnotationMapper mapper(annotations);

    std::size_t i = 0;
    const std::size_t n = ancestor.size();
    while (i < n) {
        mapper.advance(i, out.size());
        const std::size_t ann = mapper.containing(i);
        const bool inside = ann != AnnotationMapper::npos;
        const double p_indel = inside ? p_indel_ann[ann] : p_indel_neutral;
        const double p_sub = inside ? p_sub_ann[ann] : p_sub_neutral;

        if (rng.chance(p_indel)) {
            const std::uint64_t len = draw_indel_length(rng);
            if (rng.chance(0.5)) {
                // Deletion: skip `len` ancestral bases (clamped).
                const std::size_t del =
                    std::min<std::size_t>(len, n - i);
                ++result.deletion_events;
                result.deleted_bases += del;
                i += del;
                continue;
            }
            // Insertion before the current base. Half of insertions are
            // tandem duplications of the preceding output; half are random.
            ++result.insertion_events;
            result.inserted_bases += len;
            if (!out.empty() && rng.chance(0.5)) {
                const std::size_t copy_len =
                    std::min<std::size_t>(len, out.size());
                const std::size_t from = out.size() - copy_len;
                for (std::size_t k = 0; k < len; ++k)
                    out.push_back(out[from + (k % copy_len)]);
            } else {
                for (std::uint64_t k = 0; k < len; ++k)
                    out.push_back(
                        static_cast<std::uint8_t>(rng.uniform(4)));
            }
        }

        std::uint8_t base = ancestor[i];
        if (rng.chance(p_sub)) {
            const std::uint8_t mutated = substitute(base, rng);
            if (mutated != base)
                ++result.substitutions;
            base = mutated;
        }
        out.push_back(base);
        ++i;
    }

    result.sequence.set_name(ancestor.name() + ":desc");
    result.annotations = mapper.finish(n, out.size());
    return result;
}

}  // namespace darwin::synth
