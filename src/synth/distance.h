/**
 * @file
 * Phylogenetic distance estimation (Fig. 8 reproduction).
 *
 * The paper computes distances with PHAST; we estimate them with the
 * Jukes-Cantor correction applied to the mismatch fraction observed in
 * aligned (non-gap) columns of high-confidence alignments.
 */
#ifndef DARWIN_SYNTH_DISTANCE_H
#define DARWIN_SYNTH_DISTANCE_H

#include <cstdint>

namespace darwin::synth {

/** Observed per-site statistics over aligned columns. */
struct AlignedColumnCounts {
    std::uint64_t matches = 0;
    std::uint64_t mismatches = 0;

    std::uint64_t total() const { return matches + mismatches; }
    double mismatch_fraction() const;
};

/**
 * Jukes-Cantor distance (substitutions/site) from a mismatch fraction p:
 * d = -3/4 ln(1 - 4p/3). Saturates (returns +inf) for p >= 3/4.
 */
double jukes_cantor_distance(double mismatch_fraction);

/** Convenience: distance from counts. */
double jukes_cantor_distance(const AlignedColumnCounts& counts);

}  // namespace darwin::synth

#endif  // DARWIN_SYNTH_DISTANCE_H
