/**
 * @file
 * Genome-level evolution: generate an ancestor with planted conserved
 * "exon" segments, then evolve descendant genomes along branches.
 *
 * The planted segments are our ground-truth substitute for the paper's
 * TBLASTX exon orthology oracle (see DESIGN.md §1): because we know where
 * every exon landed in *both* descendants, exon recovery can be scored
 * exactly instead of via a second aligner.
 */
#ifndef DARWIN_SYNTH_EVOLVER_H
#define DARWIN_SYNTH_EVOLVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "seq/genome.h"
#include "synth/markov_source.h"
#include "synth/mutator.h"
#include "util/rng.h"

namespace darwin::synth {

/** Shape of the generated ancestor. */
struct AncestorConfig {
    std::size_t num_chromosomes = 2;
    std::size_t chromosome_length = 500'000;

    /** Number of planted conserved exons per chromosome. */
    std::size_t exons_per_chromosome = 100;
    std::uint64_t exon_min_length = 80;
    std::uint64_t exon_max_length = 400;
    /** Exon substitution-rate factors are drawn uniformly from this
     *  range: low-end exons are trivially found by any aligner, high-end
     *  ones are the marginal cases that separate the aligners. */
    double exon_sub_factor_min = 0.05;
    double exon_sub_factor_max = 0.40;
    double exon_indel_factor_min = 0.02;
    double exon_indel_factor_max = 0.15;

    /**
     * Alignable-island mosaic. Real genomes are not uniformly divergent:
     * alignable islands under moderate constraint sit in neutral
     * background that distant species cannot align at all. The island
     * parameters control how much of the genome distant pairs can align
     * and how marginal those alignments are — the regime where gapped
     * vs ungapped filtering separates (paper Fig. 2 / Table III).
     */
    double island_fraction = 0.40;       ///< genome fraction in islands
    std::uint64_t island_mean_length = 500;
    double island_sub_factor_min = 0.25;
    double island_sub_factor_max = 0.75;
    /** Island indel load relative to the neutral indel rate; the high end
     *  produces the short ungapped blocks of Fig. 2. */
    double island_indel_factor_min = 0.30;
    double island_indel_factor_max = 1.00;

    /**
     * Paralogous repeat families. A fraction of islands are not fresh
     * sequence but diverged *copies* of a shared family element: every
     * (target copy, query copy) pair of a family is a potential
     * paralogous alignment at identity (copy ages + branch divergence).
     * Paralogs dominate the matched-bp gains the paper reports for
     * distant pairs (§VI-B: "paralogs are more numerous and faster
     * evolving than orthologs ... Darwin-WGA helps identify these
     * paralogs with much higher sensitivity") — matched base-pairs can
     * exceed the genome length because one target region chains to many
     * query copies.
     */
    std::size_t repeat_families = 4;
    std::uint64_t repeat_element_min_length = 250;
    std::uint64_t repeat_element_max_length = 600;
    /** Probability that an island slot hosts a repeat copy instead. */
    double repeat_island_fraction = 0.55;
    /** Per-copy age (substitutions/site accumulated before speciation). */
    double repeat_age_min = 0.02;
    double repeat_age_max = 0.25;
    /** Branch rate factors for repeat copies (they are conserved-ish). */
    double repeat_sub_factor_min = 0.15;
    double repeat_sub_factor_max = 0.35;
    double repeat_indel_factor_min = 0.30;
    double repeat_indel_factor_max = 0.80;
};

/** A genome plus its per-chromosome rate-class annotations. */
struct AnnotatedGenome {
    seq::Genome genome;
    /** annotations[c] are sorted, non-overlapping segments on chromosome c
     *  (exons and alignable islands interleaved). */
    std::vector<std::vector<Annotation>> annotations;

    /** Number of planted exons (AnnotationKind::Exon only). */
    std::size_t total_exons() const;
};

/** Aggregate mutation statistics for a whole-genome branch. */
struct BranchStats {
    std::uint64_t substitutions = 0;
    std::uint64_t insertion_events = 0;
    std::uint64_t deletion_events = 0;
    std::uint64_t inserted_bases = 0;
    std::uint64_t deleted_bases = 0;
};

/** Generate an ancestor genome with planted exon annotations. */
AnnotatedGenome make_ancestor(const std::string& name,
                              const AncestorConfig& config,
                              const MarkovSource& source, Rng& rng);

/** Evolve a whole annotated genome along one branch. */
AnnotatedGenome evolve_genome(const AnnotatedGenome& ancestor,
                              const std::string& descendant_name,
                              const BranchParams& params, Rng& rng,
                              BranchStats* stats = nullptr);

}  // namespace darwin::synth

#endif  // DARWIN_SYNTH_EVOLVER_H
