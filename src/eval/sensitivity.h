/**
 * @file
 * Sensitivity metrics (paper §V-E, Table III).
 *
 * Three proxies, in the absence of ground truth in the paper (we *do*
 * have ground truth for exons — see eval/exon_eval.h):
 *  (i)  top-10 chain scores (orthologous base-pair proxy),
 *  (ii) matched base-pairs across all chains (ortholog+paralog proxy),
 *  (iii) exon recovery (functional-region proxy).
 */
#ifndef DARWIN_EVAL_SENSITIVITY_H
#define DARWIN_EVAL_SENSITIVITY_H

#include "chain/chain_metrics.h"
#include "wga/pipeline.h"

namespace darwin::eval {

/** Chain-level sensitivity summary of one WGA run. */
struct SensitivitySummary {
    std::size_t num_alignments = 0;
    chain::ChainMetrics chains;
};

/** Summarize a pipeline result. */
SensitivitySummary summarize(const wga::WgaResult& result,
                             std::size_t top_k = 10);

/** Percentage improvement of `ours` over `baseline` (positive = better). */
double improvement_percent(double baseline, double ours);

/** Ratio ours/baseline with a zero-safe denominator. */
double improvement_ratio(double baseline, double ours);

}  // namespace darwin::eval

#endif  // DARWIN_EVAL_SENSITIVITY_H
