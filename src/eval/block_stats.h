/**
 * @file
 * Ungapped alignment-block statistics (the paper's Fig. 2).
 *
 * An ungapped block is a maximal run of aligned (match or mismatch)
 * columns uninterrupted by an indel. Fig. 2 plots the distribution of
 * block sizes in the top-10 chains for a close pair versus a distant
 * pair, with a red line at the ~30 bp equivalent score LASTZ's ungapped
 * filter demands: blocks left of the line are invisible to ungapped
 * filtering.
 */
#ifndef DARWIN_EVAL_BLOCK_STATS_H
#define DARWIN_EVAL_BLOCK_STATS_H

#include <cstdint>
#include <vector>

#include "util/stats.h"
#include "wga/pipeline.h"

namespace darwin::eval {

/** Collected block-length data. */
struct BlockStats {
    std::vector<std::uint64_t> lengths;
    double mean_length = 0.0;
    double fraction_below_30bp = 0.0;

    /** Log-binned histogram, Fig. 2 style. */
    LogHistogram histogram{20};
};

/**
 * Collect ungapped block lengths from the top-k chains of a result.
 * @param top_k Number of chains to mine (the paper uses 10).
 */
BlockStats collect_block_stats(const wga::WgaResult& result,
                               std::size_t top_k = 10);

/** Block lengths of a single alignment's edit script. */
std::vector<std::uint64_t> ungapped_blocks(const align::Cigar& cigar);

}  // namespace darwin::eval

#endif  // DARWIN_EVAL_BLOCK_STATS_H
