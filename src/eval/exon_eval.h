/**
 * @file
 * Exon-recovery evaluation — the Table III "Exon Counts" metric.
 *
 * The paper asks, for every exon with a detectable ortholog (TBLASTX
 * oracle), whether the aligner's chains cover it. Our synthetic genomes
 * carry planted conserved segments whose positions in *both* descendants
 * are known exactly (synth::Annotation), so the oracle is ground truth:
 * an exon is *recovered* when chain blocks cover at least `min_coverage`
 * of its target copy while mapping into the neighborhood of its query
 * copy.
 */
#ifndef DARWIN_EVAL_EXON_EVAL_H
#define DARWIN_EVAL_EXON_EVAL_H

#include <string>
#include <vector>

#include "seq/interval.h"
#include "synth/evolver.h"
#include "wga/pipeline.h"

namespace darwin::eval {

/** One exon with both copies in flattened-genome coordinates. */
struct FlatExon {
    std::string name;
    seq::Interval target;  ///< flat coords in the target genome
    seq::Interval query;   ///< flat coords in the query genome
};

/**
 * Pair up annotations by name across the two genomes and lift them to
 * flattened coordinates. Only exons present in both genomes (all of
 * them, for genomes evolved from one ancestor) are returned.
 */
std::vector<FlatExon> flatten_exons(const synth::AnnotatedGenome& target,
                                    const synth::AnnotatedGenome& query);

/** Exon recovery parameters. */
struct ExonEvalParams {
    double min_coverage = 0.5;        ///< fraction of the target copy
    std::uint64_t query_margin = 2000;  ///< slack around the query copy
};

/** Result of the recovery count. */
struct ExonEvalResult {
    std::size_t total_exons = 0;
    std::size_t recovered = 0;

    double
    fraction() const
    {
        return total_exons
                   ? static_cast<double>(recovered) /
                         static_cast<double>(total_exons)
                   : 0.0;
    }
};

/** Count exons recovered by the chains of a WGA result. */
ExonEvalResult count_recovered_exons(const std::vector<FlatExon>& exons,
                                     const wga::WgaResult& result,
                                     const ExonEvalParams& params = {});

}  // namespace darwin::eval

#endif  // DARWIN_EVAL_EXON_EVAL_H
