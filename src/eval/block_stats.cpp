#include "eval/block_stats.h"

#include <algorithm>

namespace darwin::eval {

std::vector<std::uint64_t>
ungapped_blocks(const align::Cigar& cigar)
{
    std::vector<std::uint64_t> blocks;
    std::uint64_t run = 0;
    for (const auto& op : cigar.runs()) {
        switch (op.op) {
          case align::EditOp::Match:
          case align::EditOp::Mismatch:
            run += op.length;
            break;
          case align::EditOp::Insert:
          case align::EditOp::Delete:
            if (run > 0)
                blocks.push_back(run);
            run = 0;
            break;
        }
    }
    if (run > 0)
        blocks.push_back(run);
    return blocks;
}

BlockStats
collect_block_stats(const wga::WgaResult& result, std::size_t top_k)
{
    BlockStats out;
    const std::size_t k = std::min(top_k, result.chains.size());
    for (std::size_t c = 0; c < k; ++c) {
        for (const std::size_t idx : result.chains[c].members) {
            for (const std::uint64_t len :
                 ungapped_blocks(result.alignments[idx].cigar)) {
                out.lengths.push_back(len);
                out.histogram.add(len);
            }
        }
    }
    if (!out.lengths.empty()) {
        std::uint64_t total = 0;
        std::uint64_t below = 0;
        for (const std::uint64_t len : out.lengths) {
            total += len;
            if (len < 30)
                ++below;
        }
        out.mean_length = static_cast<double>(total) /
                          static_cast<double>(out.lengths.size());
        out.fraction_below_30bp =
            static_cast<double>(below) /
            static_cast<double>(out.lengths.size());
    }
    return out;
}

}  // namespace darwin::eval
