#include "eval/exon_eval.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace darwin::eval {

std::vector<FlatExon>
flatten_exons(const synth::AnnotatedGenome& target,
              const synth::AnnotatedGenome& query)
{
    // Index the query copies by name.
    std::unordered_map<std::string, seq::Interval> query_by_name;
    for (std::size_t c = 0; c < query.annotations.size(); ++c) {
        const std::uint64_t offset = query.genome.flat_offset(c);
        for (const auto& ann : query.annotations[c]) {
            if (ann.kind != synth::AnnotationKind::Exon)
                continue;
            query_by_name[ann.name] = {offset + ann.interval.start,
                                       offset + ann.interval.end};
        }
    }

    std::vector<FlatExon> out;
    for (std::size_t c = 0; c < target.annotations.size(); ++c) {
        const std::uint64_t offset = target.genome.flat_offset(c);
        for (const auto& ann : target.annotations[c]) {
            if (ann.kind != synth::AnnotationKind::Exon)
                continue;
            const auto it = query_by_name.find(ann.name);
            if (it == query_by_name.end() || it->second.empty())
                continue;
            if (ann.interval.empty())
                continue;
            out.push_back(FlatExon{
                ann.name,
                {offset + ann.interval.start, offset + ann.interval.end},
                it->second});
        }
    }
    return out;
}

ExonEvalResult
count_recovered_exons(const std::vector<FlatExon>& exons,
                      const wga::WgaResult& result,
                      const ExonEvalParams& params)
{
    // Collect the blocks of all chains once, sorted by target start.
    struct Block {
        seq::Interval target;
        seq::Interval query;
    };
    std::vector<Block> blocks;
    for (const auto& chain : result.chains) {
        for (const std::size_t idx : chain.members) {
            const auto& a = result.alignments[idx];
            blocks.push_back(Block{{a.target_start, a.target_end},
                                   {a.query_start, a.query_end}});
        }
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const Block& x, const Block& y) {
                  return x.target.start < y.target.start;
              });

    ExonEvalResult out;
    out.total_exons = exons.size();
    for (const auto& exon : exons) {
        // Expand the query copy by the margin.
        const seq::Interval query_window{
            exon.query.start > params.query_margin
                ? exon.query.start - params.query_margin
                : 0,
            exon.query.end + params.query_margin};

        std::vector<seq::Interval> covering;
        // Blocks are sorted by target start; a linear scan with an early
        // break keeps this O(blocks) per exon.
        for (const auto& block : blocks) {
            if (block.target.start >= exon.target.end)
                break;
            if (seq::intersection_length(block.target, exon.target) == 0)
                continue;
            if (seq::intersection_length(block.query, query_window) == 0)
                continue;
            covering.push_back(block.target);
        }
        if (seq::coverage_fraction(exon.target, covering) >=
            params.min_coverage)
            ++out.recovered;
    }
    return out;
}

}  // namespace darwin::eval
