#include "eval/sensitivity.h"

namespace darwin::eval {

SensitivitySummary
summarize(const wga::WgaResult& result, std::size_t top_k)
{
    SensitivitySummary out;
    out.num_alignments = result.alignments.size();
    out.chains = chain::summarize_chains(result.chains, top_k);
    return out;
}

double
improvement_percent(double baseline, double ours)
{
    if (baseline == 0.0)
        return ours == 0.0 ? 0.0 : 100.0;
    return (ours - baseline) / baseline * 100.0;
}

double
improvement_ratio(double baseline, double ours)
{
    if (baseline == 0.0)
        return ours == 0.0 ? 1.0 : 0.0;
    return ours / baseline;
}

}  // namespace darwin::eval
