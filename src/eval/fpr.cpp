#include "eval/fpr.h"

#include "chain/chain_metrics.h"
#include "seq/shuffle.h"

namespace darwin::eval {

FprResult
noise_analysis(const wga::WgaPipeline& pipeline, const seq::Genome& target,
               const seq::Genome& query, std::size_t repeats,
               std::uint64_t seed, ThreadPool* pool)
{
    FprResult out;
    out.repeats = repeats;

    const wga::WgaResult real = pipeline.run(target, query, pool);
    out.real_matched_bases =
        chain::summarize_chains(real.chains).total_matched_bases;

    Rng rng(seed);
    std::uint64_t total_shuffled = 0;
    for (std::size_t r = 0; r < repeats; ++r) {
        const seq::Genome shuffled = seq::shuffle_genome(target, rng);
        const wga::WgaResult null_run = pipeline.run(shuffled, query, pool);
        total_shuffled +=
            chain::summarize_chains(null_run.chains).total_matched_bases;
    }
    out.shuffled_matched_bases_mean =
        repeats ? static_cast<double>(total_shuffled) /
                      static_cast<double>(repeats)
                : 0.0;
    return out;
}

}  // namespace darwin::eval
