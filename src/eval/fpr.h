/**
 * @file
 * False-positive-rate (noise) analysis (paper §V-E, §VI-B).
 *
 * The null model is the target genome shuffled with exact dinucleotide
 * preservation: any alignment the pipeline finds against it is a false
 * positive. FPR = matched bp against the shuffled target / matched bp
 * against the real target, averaged over repeats.
 */
#ifndef DARWIN_EVAL_FPR_H
#define DARWIN_EVAL_FPR_H

#include <cstdint>

#include "wga/pipeline.h"

namespace darwin::eval {

/** Outcome of the noise analysis. */
struct FprResult {
    std::uint64_t real_matched_bases = 0;
    double shuffled_matched_bases_mean = 0.0;
    std::size_t repeats = 0;

    /** FPR as a fraction (the paper reports e.g. 0.0007%). */
    double
    rate() const
    {
        return real_matched_bases
                   ? shuffled_matched_bases_mean /
                         static_cast<double>(real_matched_bases)
                   : 0.0;
    }
};

/**
 * Run the noise analysis: one real run plus `repeats` runs against
 * independently shuffled copies of the target.
 */
FprResult noise_analysis(const wga::WgaPipeline& pipeline,
                         const seq::Genome& target,
                         const seq::Genome& query, std::size_t repeats,
                         std::uint64_t seed, ThreadPool* pool = nullptr);

}  // namespace darwin::eval

#endif  // DARWIN_EVAL_FPR_H
