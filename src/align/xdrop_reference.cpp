#include "align/xdrop_reference.h"

#include <algorithm>
#include <vector>

#include "align/detail/pointer_grid.h"
#include "util/logging.h"

namespace darwin::align {

using detail::kDiag;
using detail::kHGap;
using detail::kVGap;
using detail::pack_pointer;
using detail::PointerGrid;

TileResult
xdrop_extend(std::span<const std::uint8_t> target,
             std::span<const std::uint8_t> query, const XDropConfig& config)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    const ScoringParams& scoring = config.scoring;
    const Score ydrop = config.ydrop;

    TileResult out;
    if (n == 0 || m == 0)
        return out;

    // Previous-row value arrays over the full column range (only the
    // window [prev_start, prev_end] holds live values).
    std::vector<Score> v_prev(n + 1, kScoreNegInf);
    std::vector<Score> g_prev(n + 1, kScoreNegInf);
    std::vector<Score> v_cur(n + 1, kScoreNegInf);
    std::vector<Score> g_cur(n + 1, kScoreNegInf);

    Score vmax = 0;
    std::size_t best_i = 0;
    std::size_t best_j = 0;

    // Row 0: leading target gap, pruned at the X-drop bound.
    std::size_t prev_start = 0;
    std::size_t prev_end = 0;
    v_prev[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
        const Score val = -scoring.gap_cost(j);
        if (val < -ydrop)
            break;
        v_prev[j] = val;
        prev_end = j;
    }

    PointerGrid grid;
    std::uint64_t traceback_bytes = 0;
    bool truncated = false;

    std::vector<std::uint8_t> row_codes;  // one pointer code per cell
    for (std::size_t i = 1; i <= m && !truncated; ++i) {
        const Score threshold = vmax - ydrop;
        const std::size_t row_start = prev_start;
        std::fill(v_cur.begin() + static_cast<std::ptrdiff_t>(row_start),
                  v_cur.begin() +
                      static_cast<std::ptrdiff_t>(
                          std::min(n, prev_end + 2)) + 1,
                  kScoreNegInf);
        std::fill(g_cur.begin() + static_cast<std::ptrdiff_t>(row_start),
                  g_cur.begin() +
                      static_cast<std::ptrdiff_t>(
                          std::min(n, prev_end + 2)) + 1,
                  kScoreNegInf);

        row_codes.clear();

        Score h = kScoreNegInf;
        std::size_t alive_first = n + 1;
        std::size_t alive_last = 0;

        std::size_t j = row_start;
        if (j == 0) {
            // Column 0 boundary: leading query gap.
            const Score val = -scoring.gap_cost(i);
            const bool alive = val >= threshold;
            v_cur[0] = alive ? val : kScoreNegInf;
            g_cur[0] = v_cur[0];
            row_codes.push_back(pack_pointer(kVGap, false, i == 1));
            if (alive) {
                alive_first = 0;
                alive_last = 0;
            }
            ++out.cells_computed;
            j = 1;
        } else {
            // Window does not touch column 0; left neighbor is pruned.
            h = kScoreNegInf;
        }

        for (; j <= n; ++j) {
            const Score up =
                (j >= prev_start && j <= prev_end) ? v_prev[j]
                                                   : kScoreNegInf;
            const Score diag_v = (j >= prev_start + 1 && j <= prev_end + 1)
                                     ? v_prev[j - 1]
                                     : kScoreNegInf;
            const Score g_up =
                (j >= prev_start && j <= prev_end) ? g_prev[j]
                                                   : kScoreNegInf;

            const Score left_v = (j - 1 >= row_start) ? v_cur[j - 1]
                                                      : kScoreNegInf;
            const Score h_open = left_v - scoring.gap_open;
            const Score h_ext = h - scoring.gap_extend;
            h = std::max(h_open, h_ext);
            const bool hopen = h_open >= h_ext;
            if (h < threshold)
                h = kScoreNegInf;

            Score g = std::max(up - scoring.gap_open,
                               g_up - scoring.gap_extend);
            const bool vopen = (up - scoring.gap_open) >=
                               (g_up - scoring.gap_extend);
            if (g < threshold)
                g = kScoreNegInf;

            const Score diag =
                diag_v + scoring.substitution(target[j - 1], query[i - 1]);

            Score val = diag;
            std::uint8_t vdir = kDiag;
            if (h > val) {
                val = h;
                vdir = kHGap;
            }
            if (g > val) {
                val = g;
                vdir = kVGap;
            }
            if (val < threshold)
                val = kScoreNegInf;

            v_cur[j] = val;
            g_cur[j] = g;
            row_codes.push_back(pack_pointer(vdir, hopen, vopen));
            ++out.cells_computed;

            if (val > vmax) {
                vmax = val;
                best_i = i;
                best_j = j;
            }
            if (val != kScoreNegInf || g != kScoreNegInf) {
                alive_first = std::min(alive_first, j);
                alive_last = std::max(alive_last, j);
            }
            // Beyond the previous row's influence, only the horizontal gap
            // can keep the row alive.
            if (j > prev_end && val == kScoreNegInf && h == kScoreNegInf)
                break;
        }

        traceback_bytes += (row_codes.size() + 1) / 2;
        grid.add_row_codes(row_start, row_codes.data(), row_codes.size());
        if (traceback_bytes > config.traceback_limit_bytes)
            truncated = true;

        if (alive_first > alive_last && alive_first == n + 1)
            break;  // row fully pruned: extension is finished
        prev_start = alive_first;
        prev_end = alive_last;
        std::swap(v_prev, v_cur);
        std::swap(g_prev, g_cur);
    }

    out.max_score = vmax;
    out.target_max = best_j;
    out.query_max = best_i;
    out.traceback_bytes = traceback_bytes;
    if (best_i != 0 || best_j != 0)
        out.cigar = detail::trace_from(grid, target, query, best_i, best_j);
    return out;
}

}  // namespace darwin::align
