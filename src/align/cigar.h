/**
 * @file
 * CIGAR edit scripts.
 *
 * Conventions used across the library:
 *  - the *target* (reference, `r`) advances on Match/Mismatch/Delete,
 *  - the *query* (`q`) advances on Match/Mismatch/Insert,
 *  - Insert = bases present in the query but not the target,
 *  - Delete = bases present in the target but not the query.
 */
#ifndef DARWIN_ALIGN_CIGAR_H
#define DARWIN_ALIGN_CIGAR_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "align/scoring.h"

namespace darwin::align {

/** One kind of edit operation. */
enum class EditOp : std::uint8_t {
    Match,     ///< '=' — target and query bases equal
    Mismatch,  ///< 'X' — substitution
    Insert,    ///< 'I' — gap in target (query-only bases)
    Delete,    ///< 'D' — gap in query (target-only bases)
};

/** ASCII letter for an op. */
char edit_op_char(EditOp op);

/** A run-length encoded edit operation. */
struct CigarRun {
    EditOp op;
    std::uint32_t length;

    bool operator==(const CigarRun&) const = default;
};

/** Run-length-encoded edit script. */
class Cigar {
  public:
    Cigar() = default;

    /** Append `length` copies of `op`, merging with the trailing run. */
    void push(EditOp op, std::uint32_t length = 1);

    /** Append another cigar (runs merged at the seam). */
    void append(const Cigar& other);

    /** Reverse the order of operations in place. */
    void reverse();

    bool empty() const { return runs_.empty(); }
    const std::vector<CigarRun>& runs() const { return runs_; }

    /** Total ops, and per-sequence consumed lengths. */
    std::uint64_t total_ops() const;
    std::uint64_t target_consumed() const;
    std::uint64_t query_consumed() const;

    /** Count of exact-match bases. */
    std::uint64_t matches() const;

    /** Count of mismatch bases. */
    std::uint64_t mismatches() const;

    /** Number of gap *runs* (indel events). */
    std::uint64_t gap_runs() const;

    /** Number of gap bases (insert + delete lengths). */
    std::uint64_t gap_bases() const;

    /** Compact textual form, e.g. "120=1X3I45=". */
    std::string to_string() const;

    /**
     * Recompute the affine-gap score of this edit script over the given
     * base-code spans. Used by tests to verify that every kernel's
     * reported score matches its reported path, and by the extension
     * stitcher to score stitched alignments.
     */
    Score score(std::span<const std::uint8_t> target,
                std::span<const std::uint8_t> query,
                const ScoringParams& scoring) const;

    /**
     * Validate that ops are consistent with the sequences: '=' runs really
     * match and 'X' runs really differ. Returns false on any violation or
     * if the consumed lengths overrun the spans.
     */
    bool consistent_with(std::span<const std::uint8_t> target,
                         std::span<const std::uint8_t> query) const;

    bool operator==(const Cigar&) const = default;

  private:
    std::vector<CigarRun> runs_;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_CIGAR_H
