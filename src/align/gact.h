/**
 * @file
 * GACT — the original Darwin tile extension algorithm (baseline).
 *
 * A GACT tile computes the *full* T x T Needleman-Wunsch matrix from the
 * tile origin and traces back from the maximum cell, so its traceback
 * memory requirement is T^2/2 bytes (4-bit pointers): the available
 * traceback memory dictates the tile size. GACT-X (align/gactx.h) replaces
 * the full matrix with an X-drop band, affording much larger tiles in the
 * same memory — the comparison reproduced in the paper's Fig. 10.
 */
#ifndef DARWIN_ALIGN_GACT_H
#define DARWIN_ALIGN_GACT_H

#include "align/tile.h"
#include "align/xdrop_reference.h"

namespace darwin::align {

/** Configuration of the GACT tile engine. */
struct GactParams {
    ScoringParams scoring = ScoringParams::paper_defaults();

    /** Traceback pointer memory budget in bytes (sets the tile size). */
    std::uint64_t traceback_bytes = 1ULL << 20;

    /** Overlap between successive tiles (bp). */
    std::size_t overlap = 128;
};

/** Largest tile edge whose full pointer matrix fits in `bytes`. */
std::size_t gact_tile_size_for_memory(std::uint64_t bytes);

/** The GACT tile aligner: full-tile NW from the origin, max-cell traceback. */
class GactTileAligner : public TileAligner {
  public:
    explicit GactTileAligner(GactParams params);

    TileResult align_tile(std::span<const std::uint8_t> target,
                          std::span<const std::uint8_t> query) const override;

    std::size_t tile_size() const override { return tile_size_; }
    std::size_t tile_overlap() const override { return params_.overlap; }

    const GactParams& params() const { return params_; }

  private:
    GactParams params_;
    std::size_t tile_size_;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_GACT_H
