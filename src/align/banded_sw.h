/**
 * @file
 * Banded Smith-Waterman — the gapped filtering kernel (paper §III-C).
 *
 * A tile of size Tf is cut around each seed hit with the hit at its
 * center; Smith-Waterman with affine gaps is evaluated only within a band
 * of +/-B cells around the tile's main diagonal. The kernel returns the
 * maximum cell score Vmax and its position xmax; the filter stage passes
 * the hit to extension iff Vmax >= Hf, using xmax as the anchor.
 *
 * This is the computational bottleneck of whole genome alignment (the
 * filter stage dominates runtime), so the kernel is score-only (no
 * traceback) and runs in O(B) memory per row.
 */
#ifndef DARWIN_ALIGN_BANDED_SW_H
#define DARWIN_ALIGN_BANDED_SW_H

#include <cstdint>
#include <span>

#include "align/scoring.h"

namespace darwin::align {

/** Outcome of one banded-SW tile. */
struct BswResult {
    Score max_score = 0;       ///< Vmax (>= 0, Smith-Waterman semantics)
    std::size_t target_max = 0;  ///< target bases consumed at xmax
    std::size_t query_max = 0;   ///< query bases consumed at xmax
    std::uint64_t cells_computed = 0;
};

/**
 * Run banded Smith-Waterman over a tile.
 *
 * @param target Tile slice of the target.
 * @param query  Tile slice of the query (the band is centered on the
 *               i == j diagonal, i.e. the caller centers the seed hit).
 * @param scoring Substitution matrix and affine gap penalties.
 * @param band   Half-width B of the band (cells either side of the
 *               diagonal). Must be >= 0; 0 degenerates to an ungapped
 *               diagonal scan with substitutions only.
 */
BswResult banded_smith_waterman(std::span<const std::uint8_t> target,
                                std::span<const std::uint8_t> query,
                                const ScoringParams& scoring,
                                std::size_t band);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_BANDED_SW_H
