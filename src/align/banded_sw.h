/**
 * @file
 * Banded Smith-Waterman — the gapped filtering kernel (paper §III-C).
 *
 * A tile of size Tf is cut around each seed hit with the hit at its
 * center; Smith-Waterman with affine gaps is evaluated only within a band
 * of +/-B cells around the tile's main diagonal. The kernel returns the
 * maximum cell score Vmax and its position xmax; the filter stage passes
 * the hit to extension iff Vmax >= Hf, using xmax as the anchor.
 *
 * This is the computational bottleneck of whole genome alignment (the
 * filter stage dominates runtime), so the kernel is score-only (no
 * traceback) and runs in O(B) memory per row.
 *
 * `banded_smith_waterman()` is a façade over the kernel dispatch
 * registry (align/kernels/kernel_registry.h): the actual implementation
 * — tuned scalar wavefront, SSE4.2 or AVX2 — is chosen at runtime from
 * the CPU's capabilities and may be overridden with `DARWIN_KERNEL` or
 * the `--kernel` CLI flag. All implementations are bit-identical: same
 * max score, same xmax cell, same cells_computed.
 *
 * Boundary semantics (every kernel must agree; enforced by
 * tests/kernel_diff_test.cpp against a naive full-matrix reference):
 *
 *  - The result equals full Smith-Waterman on the tile with every cell
 *    outside the band |i - j| <= B forced to -inf (i.e. alignments may
 *    not leave the band, but in-band cells adjacent to the band edge
 *    still exist and read -inf from outside).
 *  - Row i = 0 and column j = 0 are alignment-start boundaries:
 *    V = 0, G = H = -inf. In particular a column-1 cell reads
 *    V(i-1, 0) = 0 diagonally (the seed kernel read -inf here).
 *  - `band == 0` degenerates to an ungapped scan of the main diagonal
 *    (substitutions only — every gap cell is out of band), computing
 *    exactly min(n, m) cells.
 *  - Empty target and/or query: the all-zero BswResult (max_score 0 at
 *    (0, 0), cells_computed 0).
 *  - `cells_computed` is the exact number of in-band DP cells
 *    |{(i, j): 1 <= i <= m, 1 <= j <= n, |i - j| <= B}| regardless of
 *    implementation or enumeration order.
 *  - xmax tie-break: among maximum-score cells, the lexicographically
 *    smallest (i, j) — what a row-major scan with strictly-greater
 *    updates naturally produces.
 */
#ifndef DARWIN_ALIGN_BANDED_SW_H
#define DARWIN_ALIGN_BANDED_SW_H

#include <cstdint>
#include <span>

#include "align/scoring.h"

namespace darwin::align {

/** Outcome of one banded-SW tile. */
struct BswResult {
    Score max_score = 0;       ///< Vmax (>= 0, Smith-Waterman semantics)
    std::size_t target_max = 0;  ///< target bases consumed at xmax
    std::size_t query_max = 0;   ///< query bases consumed at xmax
    std::uint64_t cells_computed = 0;

    /// Kernels are bit-identical, so whole-result comparison is meaningful.
    bool operator==(const BswResult&) const = default;
};

/**
 * Run banded Smith-Waterman over a tile.
 *
 * @param target Tile slice of the target.
 * @param query  Tile slice of the query (the band is centered on the
 *               i == j diagonal, i.e. the caller centers the seed hit).
 * @param scoring Substitution matrix and affine gap penalties.
 * @param band   Half-width B of the band (cells either side of the
 *               diagonal). Must be >= 0; 0 degenerates to an ungapped
 *               diagonal scan with substitutions only.
 */
BswResult banded_smith_waterman(std::span<const std::uint8_t> target,
                                std::span<const std::uint8_t> query,
                                const ScoringParams& scoring,
                                std::size_t band);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_BANDED_SW_H
