#include "align/gact.h"

#include <cmath>

#include "util/logging.h"

namespace darwin::align {

std::size_t
gact_tile_size_for_memory(std::uint64_t bytes)
{
    // A T x T tile stores (T+1) rows of up to (T+1) 4-bit pointers.
    // Solve (T+1)^2 / 2 <= bytes.
    const double edge = std::sqrt(2.0 * static_cast<double>(bytes));
    const std::size_t tile =
        edge > 1.0 ? static_cast<std::size_t>(edge) - 1 : 0;
    return tile;
}

GactTileAligner::GactTileAligner(GactParams params)
    : params_(params),
      tile_size_(gact_tile_size_for_memory(params.traceback_bytes))
{
    require(tile_size_ > params_.overlap,
            "GactTileAligner: traceback memory too small for the overlap");
}

TileResult
GactTileAligner::align_tile(std::span<const std::uint8_t> target,
                            std::span<const std::uint8_t> query) const
{
    // GACT computes the full tile: the X-drop engine with an unbounded Y
    // is exactly full Needleman-Wunsch-from-origin with max-cell
    // traceback, stored row-by-row.
    XDropConfig config;
    config.scoring = params_.scoring;
    config.ydrop = INT32_MAX / 8;
    config.traceback_limit_bytes = params_.traceback_bytes;
    return xdrop_extend(target, query, config);
}

}  // namespace darwin::align
