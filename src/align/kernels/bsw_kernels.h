/**
 * @file
 * Filter-kernel implementations behind the dispatch registry.
 *
 * Two kernel families live here (see DESIGN.md "Filter kernels"):
 *
 *  - Banded Smith-Waterman (score-only, affine gaps) reformulated along
 *    anti-diagonals: every cell (i, j) on diagonal d = i + j depends only
 *    on diagonals d-1 (left and up neighbours) and d-2 (diagonal
 *    neighbour), so all cells of a diagonal are independent and can be
 *    computed with SIMD. Buffers are indexed by the row i, which makes
 *    all loads/stores contiguous.
 *
 *  - Ungapped x-drop extension, vectorized by scoring substitution
 *    blocks with SIMD gathers and then replaying the exact scalar
 *    run/best/break chain over the block.
 *
 * Bit-identity contract: every kernel must return *exactly* the same
 * BswResult / UngappedResult as the row-major reference for every input
 * — same max score, same xmax cell, same cells_computed. The xmax cell
 * of the reference is the row-major-first maximum, i.e. the
 * lexicographically smallest (i, j) among maximum-score cells; kernels
 * that enumerate cells in a different order must apply
 * `bsw_best_consider` (or an equivalent vector reduction) to reproduce
 * that choice. tests/kernel_diff_test.cpp enforces the contract against
 * a naive full-matrix implementation.
 */
#ifndef DARWIN_ALIGN_KERNELS_BSW_KERNELS_H
#define DARWIN_ALIGN_KERNELS_BSW_KERNELS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "align/banded_sw.h"
#include "align/ungapped_xdrop.h"
#include "seq/alphabet.h"

namespace darwin::align::kernels {

// ---------------------------------------------------------------------------
// Scalar kernels (always available; `scalar` registry entry).
// ---------------------------------------------------------------------------

/**
 * Row-major banded SW — the original seed kernel with the column-0
 * boundary fix (see banded_sw.h "Boundary semantics"). Kept unregistered
 * as the micro-benchmark baseline and as a second reference for the
 * differential tests.
 */
BswResult bsw_rowmajor_reference(std::span<const std::uint8_t> target,
                                 std::span<const std::uint8_t> query,
                                 const ScoringParams& scoring,
                                 std::size_t band);

/** Anti-diagonal banded SW, tuned scalar (no per-cell bounds checks). */
BswResult bsw_wavefront_scalar(std::span<const std::uint8_t> target,
                               std::span<const std::uint8_t> query,
                               const ScoringParams& scoring,
                               std::size_t band);

/** Ungapped x-drop extension — the original scalar kernel. */
UngappedResult ungapped_xdrop_scalar(std::span<const std::uint8_t> target,
                                     std::span<const std::uint8_t> query,
                                     std::size_t seed_t, std::size_t seed_q,
                                     std::size_t seed_len,
                                     const ScoringParams& scoring,
                                     Score xdrop);

// ---------------------------------------------------------------------------
// Shared wavefront machinery (used by the scalar and SIMD variants).
// ---------------------------------------------------------------------------

/**
 * Row range [lo, hi] of in-band DP cells on anti-diagonal d = i + j,
 * for a target of length n, query of length m and band half-width B:
 *
 *   1 <= i <= m,  1 <= j = d - i <= n,  |i - j| <= B.
 *
 * Returns lo > hi when the diagonal holds no in-band cell. For band >= 1
 * emptiness is monotone in d, but band == 0 alternates: odd diagonals
 * are empty between the main-diagonal cells — kernels must handle an
 * empty diagonal with `bsw_write_empty_diagonal` and continue, not
 * break.
 */
inline std::pair<std::size_t, std::size_t>
bsw_diagonal_range(std::size_t d, std::size_t n, std::size_t m,
                   std::size_t band)
{
    std::size_t lo = 1;
    if (d > n) lo = std::max(lo, d - n);
    if (d > band) lo = std::max(lo, (d - band + 1) / 2);  // ceil((d-B)/2)
    std::size_t hi = std::min(m, d - 1);
    hi = std::min(hi, (d + band) / 2);  // floor((d+B)/2)
    return {lo, hi};
}

/**
 * Maintain the wavefront buffer invariants across a diagonal with no
 * in-band cell (band == 0 parity gaps): seed -inf sentinels over the
 * window the next diagonal will read from this buffer, and keep the
 * column-0 / row-0 boundaries. `vcur/gcur/hcur` is the buffer being
 * written for diagonal d.
 */
inline void
bsw_write_empty_diagonal(std::size_t d, std::size_t n, std::size_t m,
                         std::size_t band, Score* vcur, Score* gcur,
                         Score* hcur)
{
    const auto [nlo, nhi] = bsw_diagonal_range(d + 1, n, m, band);
    if (nlo <= nhi) {
        // Next diagonal reads slots [nlo - 1, nhi] as left/up
        // neighbours; slot 0 stays the permanent row-0 boundary.
        for (std::size_t s = std::max<std::size_t>(nlo - 1, 1); s <= nhi;
             ++s) {
            vcur[s] = kScoreNegInf;
            gcur[s] = kScoreNegInf;
            hcur[s] = kScoreNegInf;
        }
    }
    if (d <= m) {
        vcur[d] = 0;  // V(d, 0)
        gcur[d] = kScoreNegInf;
        hcur[d] = kScoreNegInf;
    }
}

/**
 * Running maximum with the row-major-first tie-break: replace the best
 * cell iff the score is strictly greater, or equal (and positive) at a
 * lexicographically smaller (i, j). Applying this rule per cell in any
 * enumeration order yields exactly the row-major winner.
 */
struct BswBest {
    Score score = 0;
    std::size_t i = 0;  ///< query row of the best cell
    std::size_t j = 0;  ///< target column of the best cell

    void consider(Score v, std::size_t ci, std::size_t cj) {
        if (v > score) {
            score = v;
            i = ci;
            j = cj;
        } else if (v == score && v > 0 &&
                   (ci < i || (ci == i && cj < j))) {
            i = ci;
            j = cj;
        }
    }
};

/**
 * Reusable per-thread DP buffers for the wavefront kernels: three V
 * generations (diagonals d-2, d-1 and the one being written) plus two
 * generations of the gap matrices G (vertical) and H (horizontal), all
 * indexed by row i with capacity m + 2 (row 0 boundary at slot 0 and a
 * high sentinel at slot hi+1 <= m+1).
 *
 * The kernels maintain the invariant that every slot a later diagonal
 * reads was written this call (computed cell, NegInf edge sentinel, or
 * the j == 0 boundary slot), so buffers never need a full clear and can
 * be reused across calls of any size.
 */
struct WavefrontScratch {
    std::vector<Score> v0, v1, v2;  ///< V: diag d-2, d-1, current
    std::vector<Score> g0, g1;      ///< G: diag d-1, current
    std::vector<Score> h0, h1;      ///< H: diag d-1, current
    void prepare(std::size_t m);
};

/** Per-thread scratch instance (kernels may run on pool threads). */
WavefrontScratch& wavefront_scratch();

}  // namespace darwin::align::kernels

#endif  // DARWIN_ALIGN_KERNELS_BSW_KERNELS_H
