/**
 * @file
 * Shared anti-diagonal scaffolding of the GACT-X wavefront kernels.
 *
 * `gactx_align_wavefront<Policy>` owns everything that is identical
 * across the scalar/SSE4.2/AVX2 variants — the stripe walk, the jstart
 * frontier scan, the boundary column, the diagonal loop with its
 * buffer rotation and lane activation, the column-completion bookkeeping
 * that replays the seed engine's sequential vmax/termination order, and
 * the packed-traceback row emission. A Policy only supplies
 * `diagonal(ctx, dd, rlo, rhi)`: compute lanes rlo..rhi of diagonal dd
 * (slots rlo+1..rhi+1 of the lane buffers), fold each value into the
 * per-column running best, and store each cell's packed 4-bit pointer
 * at nibble `base + (dd - r)` of its row. `gactx_cell` is the scalar
 * per-cell body the SIMD policies reuse for their tails.
 *
 * Coordinate map (see DESIGN.md "Extension kernels"): within a stripe
 * starting at query row i0 with first data column fdc, lane r handles
 * query row i0 + r and on diagonal dd computes column c = dd - r
 * (target column j = fdc + c). Dependencies:
 *
 *     left  V(r, c-1)  -> vd1[r + 1]      (same lane, diagonal dd - 1)
 *     up    V(r-1, c)  -> vd1[r]          (lane above, diagonal dd - 1)
 *     g_up  G(r-1, c)  -> gd1[r]
 *     diag  V(r-1, c-1)-> vd2[r]          (lane above, diagonal dd - 2)
 *     own H (r, c-1)   -> hd1[r + 1]
 *
 * Slot 0 is refreshed from the previous stripe's frontier whenever lane
 * 0 is active, which is exactly the systolic array's BRAM read port.
 */
#ifndef DARWIN_ALIGN_KERNELS_GACTX_WAVEFRONT_H
#define DARWIN_ALIGN_KERNELS_GACTX_WAVEFRONT_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>

#include "align/detail/pointer_grid.h"
#include "align/kernels/gactx_kernels.h"
#include "fault/cancel.h"
#include "seq/alphabet.h"

namespace darwin::align::kernels {

/** Per-stripe state handed to Policy::diagonal (pointers rotate). */
struct GactXDiagCtx {
    const std::uint8_t* t = nullptr;  ///< target.data()
    const std::uint8_t* q = nullptr;  ///< query.data() + i0 - 1: lane r -> q[r]
    const Score* sub = nullptr;       ///< flattened 5x5 substitution matrix
    Score open = 0;
    Score extend = 0;
    std::size_t fdc = 0;    ///< target column of c = 0
    std::size_t base = 0;   ///< nibble offset of c = 0 (1 after a boundary col)
    std::size_t stride = 0; ///< packed bytes per traceback row
    Score* vd1 = nullptr;
    Score* vd2 = nullptr;
    Score* vcur = nullptr;
    Score* gd1 = nullptr;
    Score* gcur = nullptr;
    Score* hd1 = nullptr;
    Score* hcur = nullptr;
    Score* colmax = nullptr;
    std::int32_t* colbest = nullptr;
    std::uint8_t* ptr_rows = nullptr;
};

/**
 * One DP cell, bit-exact to the seed engine's lane body: tie-breaks are
 * `>=` for both gap-open bits and strictly-greater for the V direction
 * precedence Diag < HGap < VGap and for the column best (ascending r
 * per column, so the smallest row among equals wins).
 */
inline void
gactx_cell(const GactXDiagCtx& c, std::size_t dd, std::size_t r)
{
    const std::size_t s = r + 1;
    const std::size_t col = dd - r;

    const Score left_v = c.vd1[s];
    const Score h_open = left_v - c.open;
    const Score h_ext = c.hd1[s] - c.extend;
    const bool hopen = h_open >= h_ext;
    const Score h = hopen ? h_open : h_ext;

    const Score g_open = c.vd1[s - 1] - c.open;
    const Score g_ext = c.gd1[s - 1] - c.extend;
    const bool vopen = g_open >= g_ext;
    const Score g = vopen ? g_open : g_ext;

    const std::size_t j = c.fdc + col;
    Score val = c.vd2[s - 1] +
                c.sub[c.t[j - 1] * seq::kNumCodes + c.q[r]];
    std::uint8_t vdir = detail::kDiag;
    if (h > val) {
        val = h;
        vdir = detail::kHGap;
    }
    if (g > val) {
        val = g;
        vdir = detail::kVGap;
    }

    c.vcur[s] = val;
    c.gcur[s] = g;
    c.hcur[s] = h;

    if (val > c.colmax[col]) {
        c.colmax[col] = val;
        c.colbest[col] = static_cast<std::int32_t>(r);
    }

    const std::size_t nib = c.base + col;
    std::uint8_t* byte = c.ptr_rows + r * c.stride + nib / 2;
    const std::uint8_t code = detail::pack_pointer(vdir, hopen, vopen);
    if (nib % 2 != 0)
        *byte = static_cast<std::uint8_t>(*byte | (code << 4));
    else
        *byte = code;  // assigning zeroes the (yet unwritten) high nibble
}

/**
 * gactx_cell without the pointer-nibble store — the same DP recurrence,
 * column-best update and buffer writes, so a score-only pass visits the
 * identical cell set and produces the identical score trajectory.
 */
inline void
gactx_cell_score_only(const GactXDiagCtx& c, std::size_t dd, std::size_t r)
{
    const std::size_t s = r + 1;
    const std::size_t col = dd - r;

    const Score left_v = c.vd1[s];
    const Score h_open = left_v - c.open;
    const Score h_ext = c.hd1[s] - c.extend;
    const Score h = h_open >= h_ext ? h_open : h_ext;

    const Score g_open = c.vd1[s - 1] - c.open;
    const Score g_ext = c.gd1[s - 1] - c.extend;
    const Score g = g_open >= g_ext ? g_open : g_ext;

    const std::size_t j = c.fdc + col;
    Score val = c.vd2[s - 1] +
                c.sub[c.t[j - 1] * seq::kNumCodes + c.q[r]];
    if (h > val)
        val = h;
    if (g > val)
        val = g;

    c.vcur[s] = val;
    c.gcur[s] = g;
    c.hcur[s] = h;

    if (val > c.colmax[col]) {
        c.colmax[col] = val;
        c.colbest[col] = static_cast<std::int32_t>(r);
    }
}

/**
 * `kScoreOnly` elides every traceback side effect — the ptr_rows
 * staging buffer, the PointerGrid rows and the final trace — while
 * keeping the DP, the X-drop walk and *all* accounting
 * (cells_computed, stripe_columns, traceback_bytes, budget charges)
 * identical. Because vmax starts at 0 and only strictly-greater column
 * bests move it, max_score == 0 iff the best cell is the origin iff
 * the CIGAR is empty: a score-only result with max_score == 0 is the
 * complete bit-identical TileResult for that (dead) tile. A
 * kScoreOnly Policy must route cells through gactx_cell_score_only
 * (ctx.ptr_rows is not sized for writing).
 */
template <class Policy, bool kScoreOnly = false>
TileResult
gactx_align_wavefront(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const GactXParams& params)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    const ScoringParams& scoring = params.scoring;
    const Score ydrop = params.ydrop;
    const std::size_t npe = params.num_pe;

    TileResult out;
    if (n == 0 || m == 0)
        return out;

    GactXScratch& ws = gactx_scratch();
    ws.prepare(n, npe);
    Score* bram_v = ws.bram_v.data();
    Score* bram_g = ws.bram_g.data();
    Score* next_v = ws.next_v.data();
    Score* next_g = ws.next_g.data();
    std::size_t bram_start = 0;
    std::size_t bram_end = 0;

    // Row 0 boundary: leading target gap, bounded by the X-drop test.
    // Only the window [0, bram_end] is seeded — every later frontier
    // read is window-guarded, so no full-array -inf fills are needed
    // (the seed engine's per-stripe O(n) clears are gone).
    bram_v[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
        const Score val = -scoring.gap_cost(j);
        if (val < -ydrop)
            break;
        bram_v[j] = val;
        bram_end = j;
    }
    std::fill(bram_g, bram_g + bram_end + 1, kScoreNegInf);

    Score vmax = 0;
    std::size_t best_i = 0;
    std::size_t best_j = 0;

    detail::PointerGrid grid;
    std::uint64_t traceback_bytes = 0;
    bool out_of_memory = false;

    GactXDiagCtx ctx;
    ctx.t = target.data();
    ctx.sub = scoring.matrix.front().data();
    ctx.open = scoring.gap_open;
    ctx.extend = scoring.gap_extend;
    ctx.colmax = ws.colmax.data();
    ctx.colbest = ws.colbest.data();
    Policy pol(ctx);

    for (std::size_t i0 = 1; i0 <= m && !out_of_memory; i0 += npe) {
        // Budget/injection probe once per stripe: the cooperative
        // cancellation granularity for every kernel variant (a stripe is
        // at most npe * n cells). Polling never alters any DP state, so
        // results stay bit-identical whether or not a token is armed.
        fault::poll("extend.stripe");
        const std::uint64_t stripe_cells_before = out.cells_computed;
        const std::size_t i1 = std::min(m, i0 + npe - 1);
        const std::size_t rows = i1 - i0 + 1;
        const Score stripe_threshold = vmax - ydrop;

        // jstart: first column of the previous stripe's stored row whose
        // score still clears the X-drop bound (V >= D, so scanning V and
        // the stored vertical-gap score covers both).
        std::size_t jstart = bram_start;
        while (jstart <= bram_end && bram_v[jstart] < stripe_threshold &&
               bram_g[jstart] < stripe_threshold)
            ++jstart;
        if (jstart > bram_end)
            break;  // the whole frontier fell below the bound

        const std::size_t fdc = std::max<std::size_t>(jstart, 1);
        const std::size_t num_cols = n - fdc + 1;
        const std::size_t base = (jstart == 0) ? 1 : 0;
        const std::size_t stride = (base + num_cols + 1) / 2;
        if constexpr (!kScoreOnly) {
            if (ws.ptr_rows.size() < rows * stride)
                ws.ptr_rows.resize(rows * stride);
        }

        // Column-0 boundary values per lane (-gap_cost(i0 + r) when the
        // window touches column 0, pruned otherwise). These seed each
        // lane's first left neighbour and, one diagonal later, the next
        // lane's diagonal neighbour.
        if (jstart == 0) {
            Score cost = scoring.gap_cost(i0);
            for (std::size_t r = 0; r < rows; ++r) {
                ws.init_left[r] = -cost;
                cost += scoring.gap_extend;
            }
        } else {
            std::fill(ws.init_left.begin(),
                      ws.init_left.begin() +
                          static_cast<std::ptrdiff_t>(rows),
                      kScoreNegInf);
        }
        std::fill(ws.colmax.begin(),
                  ws.colmax.begin() +
                      static_cast<std::ptrdiff_t>(num_cols),
                  kScoreNegInf);

        std::uint32_t columns = 0;
        std::uint32_t data_columns = 0;
        std::size_t last_col = (jstart == 0) ? 0 : jstart - 1;

        if (jstart == 0) {
            // Boundary column: one leading-query-gap cell per lane.
            if constexpr (!kScoreOnly) {
                for (std::size_t r = 0; r < rows; ++r)
                    ws.ptr_rows[r * stride] = detail::pack_pointer(
                        detail::kVGap, false, i0 + r == 1);
            }
            out.cells_computed += rows;
            next_v[0] = ws.init_left[rows - 1];
            next_g[0] = ws.init_left[rows - 1];
            ++columns;
        }

        Score* vd2 = ws.v0.data();
        Score* vd1 = ws.v1.data();
        Score* vcur = ws.v2.data();
        Score* gd1 = ws.g0.data();
        Score* gcur = ws.g1.data();
        Score* hd1 = ws.h0.data();
        Score* hcur = ws.h1.data();
        vd1[1] = ws.init_left[0];
        hd1[1] = kScoreNegInf;

        ctx.q = query.data() + (i0 - 1);
        ctx.fdc = fdc;
        ctx.base = base;
        ctx.stride = stride;
        ctx.ptr_rows = ws.ptr_rows.data();

        bool stripe_done = false;
        const std::size_t ddmax = (num_cols - 1) + (rows - 1);
        for (std::size_t dd = 0; dd <= ddmax && !stripe_done; ++dd) {
            const std::size_t rlo =
                (dd >= num_cols) ? dd - (num_cols - 1) : 0;
            const std::size_t rhi = std::min(rows - 1, dd);

            if (rlo == 0) {
                // Lane 0's BRAM port: the previous stripe's frontier at
                // lane 0's current column j0 = fdc + dd.
                const std::size_t j0 = fdc + dd;
                const bool in = j0 >= bram_start && j0 <= bram_end;
                vd1[0] = in ? bram_v[j0] : kScoreNegInf;
                gd1[0] = in ? bram_g[j0] : kScoreNegInf;
                vd2[0] = (j0 > bram_start && j0 <= bram_end + 1)
                             ? bram_v[j0 - 1]
                             : kScoreNegInf;
            }

            ctx.vd1 = vd1;
            ctx.vd2 = vd2;
            ctx.vcur = vcur;
            ctx.gd1 = gd1;
            ctx.gcur = gcur;
            ctx.hd1 = hd1;
            ctx.hcur = hcur;
            pol.diagonal(ctx, dd, rlo, rhi);

            // Activate lane dd+1: this single write is its left
            // neighbour next diagonal (as vd1) and lane dd+2's diagonal
            // neighbour the diagonal after (as vd2).
            if (dd + 1 <= rows - 1) {
                vcur[dd + 2] = ws.init_left[dd + 1];
                hcur[dd + 2] = kScoreNegInf;
            }

            // Column dd - (rows - 1) just completed (its last lane ran
            // this diagonal): commit it in sequential column order —
            // vmax/best update, last-row frontier, and the live X-drop
            // stripe-termination test. Cells the wavefront has already
            // started in later columns are discarded on termination:
            // they were never counted or committed anywhere.
            if (dd >= rows - 1) {
                const std::size_t cdone = dd - (rows - 1);
                const std::size_t j = fdc + cdone;
                const Score column_best = ws.colmax[cdone];
                if (column_best > vmax) {
                    vmax = column_best;
                    best_i = i0 + static_cast<std::size_t>(
                                      ws.colbest[cdone]);
                    best_j = j;
                }
                next_v[j] = vcur[rows];
                next_g[j] = gcur[rows];
                ++columns;
                ++data_columns;
                last_col = j;
                // Termination only applies beyond the previous stripe's
                // frontier (see the seed engine: within [jstart,
                // bram_end] BRAM values further right can revive the
                // stripe).
                if (column_best < vmax - ydrop && j > bram_end)
                    stripe_done = true;
            }

            Score* vtmp = vd2;
            vd2 = vd1;
            vd1 = vcur;
            vcur = vtmp;
            std::swap(gd1, gcur);
            std::swap(hd1, hcur);
        }

        out.stripe_columns.push_back(columns);
        out.cells_computed +=
            static_cast<std::uint64_t>(data_columns) * rows;

        const std::size_t row_len = base + data_columns;
        const std::uint64_t traceback_before = traceback_bytes;
        for (std::size_t r = 0; r < rows; ++r) {
            traceback_bytes += (row_len + 1) / 2;
            if constexpr (!kScoreOnly)
                grid.add_packed_row(jstart,
                                    ws.ptr_rows.data() + r * stride,
                                    row_len);
        }
        if (traceback_bytes > params.traceback_bytes)
            out_of_memory = true;
        fault::charge_cells(out.cells_computed - stripe_cells_before);
        fault::charge_heap_bytes(traceback_bytes - traceback_before);

        // Publish the stripe's last row as the next BRAM row. Every
        // column of the new window [jstart, last_col] was written (the
        // boundary column and/or the consecutive completed columns), so
        // no clearing is needed before the swap.
        std::swap(bram_v, next_v);
        std::swap(bram_g, next_g);
        bram_start = jstart;
        bram_end = last_col;
        if (bram_end < bram_start)
            break;
    }

    out.max_score = vmax;
    out.target_max = best_j;
    out.query_max = best_i;
    out.traceback_bytes = traceback_bytes;
    if constexpr (!kScoreOnly) {
        if (best_i != 0 || best_j != 0)
            out.cigar =
                detail::trace_from(grid, target, query, best_i, best_j);
    }
    return out;
}

}  // namespace darwin::align::kernels

#endif  // DARWIN_ALIGN_KERNELS_GACTX_WAVEFRONT_H
