/**
 * The seed GACT-X stripe engine, column-serial — kept bit-for-bit as
 * the oracle for the wavefront kernels and the micro-benchmark
 * baseline. Each stripe marches column by column with the systolic
 * lane chain (`up = val`, `g_up = g`, `diag_carry`), then transposes
 * the column-major pointer buffer into per-row records; the wavefront
 * kernels eliminate both the serial chain and the transpose but must
 * reproduce this engine's TileResult exactly (see gactx_kernels.h).
 */
#include "align/kernels/gactx_kernels.h"

#include <algorithm>
#include <vector>

#include "align/detail/pointer_grid.h"

namespace darwin::align::kernels {

using detail::kDiag;
using detail::kHGap;
using detail::kVGap;
using detail::pack_pointer;
using detail::PointerGrid;

TileResult
gactx_reference_align(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const GactXParams& params)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    const ScoringParams& scoring = params.scoring;
    const Score ydrop = params.ydrop;
    const std::size_t npe = params.num_pe;

    TileResult out;
    if (n == 0 || m == 0)
        return out;

    // "BRAM" row: V and the vertical-gap score of the last row of the
    // previous stripe, valid over [bram_start, bram_end] inclusive.
    std::vector<Score> bram_v(n + 1, kScoreNegInf);
    std::vector<Score> bram_g(n + 1, kScoreNegInf);
    std::vector<Score> next_v(n + 1, kScoreNegInf);
    std::vector<Score> next_g(n + 1, kScoreNegInf);
    std::size_t bram_start = 0;
    std::size_t bram_end = 0;

    // Row 0 boundary: leading target gap, bounded by the X-drop test.
    bram_v[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
        const Score val = -scoring.gap_cost(j);
        if (val < -ydrop)
            break;
        bram_v[j] = val;
        bram_end = j;
    }

    Score vmax = 0;
    std::size_t best_i = 0;
    std::size_t best_j = 0;

    PointerGrid grid;
    std::uint64_t traceback_bytes = 0;
    bool out_of_memory = false;

    // Per-stripe lane state (one entry per PE row).
    std::vector<Score> col_v(npe), col_g(npe), col_h(npe);
    std::vector<Score> prev_col_v(npe), prev_col_g(npe);
    std::vector<std::uint8_t> ptr_buf;
    std::vector<std::uint8_t> lane_q(npe);

    for (std::size_t i0 = 1; i0 <= m && !out_of_memory; i0 += npe) {
        const std::size_t i1 = std::min(m, i0 + npe - 1);
        const std::size_t rows = i1 - i0 + 1;
        const Score stripe_threshold = vmax - ydrop;

        // jstart: first column of the previous stripe's stored row whose
        // score still clears the X-drop bound (V >= D, so scanning V and
        // the stored vertical-gap score covers both).
        std::size_t jstart = bram_start;
        while (jstart <= bram_end && bram_v[jstart] < stripe_threshold &&
               bram_g[jstart] < stripe_threshold)
            ++jstart;
        if (jstart > bram_end)
            break;  // the whole frontier fell below the bound


        std::vector<std::vector<std::uint8_t>> stripe_rows(rows);

        std::fill(col_h.begin(), col_h.end(), kScoreNegInf);
        std::fill(prev_col_v.begin(), prev_col_v.end(), kScoreNegInf);
        std::fill(prev_col_g.begin(), prev_col_g.end(), kScoreNegInf);

        std::uint32_t columns = 0;

        // Column 0 is the leading-query-gap boundary; when the window
        // still touches it, seed the stripe from the boundary column.
        if (jstart == 0) {
            for (std::size_t r = 0; r < rows; ++r) {
                const std::size_t i = i0 + r;
                const Score val = -scoring.gap_cost(i);
                prev_col_v[r] = val;
                prev_col_g[r] = val;
                stripe_rows[r].push_back(
                    pack_pointer(kVGap, false, i == 1));
                ++out.cells_computed;
            }
            next_v[0] = prev_col_v[rows - 1];
            next_g[0] = prev_col_g[rows - 1];
            ++columns;
        }

        // March columns through the stripe (the systolic wavefront).
        //
        // Hot loop: lane state lives in col_v/col_g/col_h updated in
        // place; the previous column's V is carried through `diag_carry`
        // (the value each lane reads diagonally is the value its row
        // held one column earlier). Pointers go into a flat per-stripe
        // buffer (one allocation, no per-cell push_back).
        const std::size_t first_data_col = std::max<std::size_t>(jstart, 1);
        std::size_t last_col = (jstart == 0) ? 0 : jstart - 1;
        const std::size_t max_cols = n - first_data_col + 2;
        if (ptr_buf.size() < rows * max_cols)
            ptr_buf.resize(rows * max_cols);
        // Lane-local query codes (query[i0-1+r]).
        for (std::size_t r = 0; r < rows; ++r)
            lane_q[r] = query[i0 - 1 + r];
        if (jstart != 0) {
            std::fill(col_v.begin(), col_v.begin() +
                      static_cast<std::ptrdiff_t>(rows), kScoreNegInf);
            std::fill(col_g.begin(), col_g.begin() +
                      static_cast<std::ptrdiff_t>(rows), kScoreNegInf);
        } else {
            for (std::size_t r = 0; r < rows; ++r) {
                col_v[r] = prev_col_v[r];
                col_g[r] = prev_col_g[r];
            }
        }
        const Score gap_open = scoring.gap_open;
        const Score gap_extend = scoring.gap_extend;
        std::uint32_t data_columns = 0;
        for (std::size_t j = first_data_col; j <= n; ++j) {
            const auto* wrow = scoring.matrix[target[j - 1]].data();
            std::uint8_t* pcol = ptr_buf.data() + data_columns * rows;

            // Lane 0 reads the BRAM row of the previous stripe.
            const bool in = j >= bram_start && j <= bram_end;
            const bool in_l = j > bram_start && j <= bram_end + 1;
            Score up = in ? bram_v[j] : kScoreNegInf;
            Score g_up = in ? bram_g[j] : kScoreNegInf;
            Score diag_carry = in_l ? bram_v[j - 1] : kScoreNegInf;

            Score column_best = kScoreNegInf;
            std::size_t best_r = 0;
            for (std::size_t r = 0; r < rows; ++r) {
                const Score left_v = col_v[r];

                const Score h_open = left_v - gap_open;
                const Score h_ext = col_h[r] - gap_extend;
                const bool hopen = h_open >= h_ext;
                const Score h = hopen ? h_open : h_ext;
                col_h[r] = h;

                const Score g_open = up - gap_open;
                const Score g_ext = g_up - gap_extend;
                const bool vopen = g_open >= g_ext;
                const Score g = vopen ? g_open : g_ext;

                Score val = diag_carry + wrow[lane_q[r]];
                std::uint8_t vdir = kDiag;
                if (h > val) {
                    val = h;
                    vdir = kHGap;
                }
                if (g > val) {
                    val = g;
                    vdir = kVGap;
                }

                pcol[r] = pack_pointer(vdir, hopen, vopen);
                diag_carry = left_v;
                col_v[r] = val;
                col_g[r] = g;
                up = val;
                g_up = g;
                if (val > column_best) {
                    column_best = val;
                    best_r = r;
                }
            }
            if (column_best > vmax) {
                vmax = column_best;
                best_i = i0 + best_r;
                best_j = j;
            }
            next_v[j] = col_v[rows - 1];
            next_g[j] = col_g[rows - 1];
            ++columns;
            ++data_columns;
            last_col = j;
            // Termination only applies beyond the previous stripe's
            // frontier: within [jstart, bram_end] BRAM values further
            // right can still revive the stripe (even values below the
            // *current* bound may seed cells that climb back above it),
            // so the wavefront sweeps the whole inherited window.
            if (column_best < vmax - ydrop && j > bram_end)
                break;  // every lane fell below the bound
        }
        out.stripe_columns.push_back(columns);
        out.cells_computed += static_cast<std::uint64_t>(data_columns) *
                              rows;

        // Transpose the flat buffer into per-row pointer records.
        for (std::size_t r = 0; r < rows; ++r) {
            auto& codes = stripe_rows[r];
            codes.reserve(codes.size() + data_columns);
            for (std::uint32_t c = 0; c < data_columns; ++c)
                codes.push_back(ptr_buf[c * rows + r]);
        }
        for (auto& codes : stripe_rows) {
            traceback_bytes += (codes.size() + 1) / 2;
            grid.add_row_codes(jstart, codes.data(), codes.size());
        }
        if (traceback_bytes > params.traceback_bytes)
            out_of_memory = true;

        // Publish the stripe's last row as the next BRAM row.
        std::swap(bram_v, next_v);
        std::swap(bram_g, next_g);
        std::fill(next_v.begin(), next_v.end(), kScoreNegInf);
        std::fill(next_g.begin(), next_g.end(), kScoreNegInf);
        bram_start = jstart;
        bram_end = last_col;
        if (bram_end < bram_start)
            break;
    }

    out.max_score = vmax;
    out.target_max = best_j;
    out.query_max = best_i;
    out.traceback_bytes = traceback_bytes;
    if (best_i != 0 || best_j != 0)
        out.cigar = detail::trace_from(grid, target, query, best_i, best_j);
    return out;
}

}  // namespace darwin::align::kernels
