#include "align/kernels/cpu_features.h"

namespace darwin::align::kernels {

CpuFeatures probe_cpu_features() {
    CpuFeatures f;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    // __builtin_cpu_supports also verifies OS support (XSAVE/YMM state)
    // for AVX2, which a raw CPUID leaf check would miss.
    f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
    return f;
}

}  // namespace darwin::align::kernels
