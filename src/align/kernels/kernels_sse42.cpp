/**
 * SSE4.2 filter kernels (4 x int32 lanes). Compiled with -msse4.2 when
 * the compiler supports it (see src/CMakeLists.txt); otherwise the stub
 * at the bottom reports the ISA as uncompiled and the registry skips it.
 *
 * The banded-SW kernel is the wavefront layout of bsw_wavefront.cpp
 * with the inner diagonal loop vectorized: full 4-lane blocks first,
 * then a scalar tail that shares the exact per-cell arithmetic.
 * Substitution scores are gathered scalar-wise (SSE has no gather); the
 * DP arithmetic and the max-cell reduction are vectorized. Integer ops
 * are exact, so results are bit-identical to the scalar kernel.
 */
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/gactx_wavefront.h"
#include "align/kernels/kernel_registry.h"

#if defined(__SSE4_2__)

#include <nmmintrin.h>

#include <cstring>

namespace darwin::align::kernels {
namespace {

inline Score hmax4(__m128i v) {
    __m128i m = _mm_max_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(m);
}

inline int movemask32(__m128i v) {
    return _mm_movemask_ps(_mm_castsi128_ps(v));
}

BswResult
bsw_sse42(std::span<const std::uint8_t> target,
          std::span<const std::uint8_t> query,
          const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    WavefrontScratch& ws = wavefront_scratch();
    ws.prepare(m);
    Score* vd2 = ws.v0.data();
    Score* vd1 = ws.v1.data();
    Score* vcur = ws.v2.data();
    Score* gd1 = ws.g0.data();
    Score* gcur = ws.g1.data();
    Score* hd1 = ws.h0.data();
    Score* hcur = ws.h1.data();

    const Score open = scoring.gap_open;
    const Score extend = scoring.gap_extend;
    const Score* sub = scoring.matrix.front().data();
    const std::uint8_t* t = target.data();
    const std::uint8_t* q = query.data();

    const __m128i vopen = _mm_set1_epi32(open);
    const __m128i vext = _mm_set1_epi32(extend);
    const __m128i vzero = _mm_setzero_si128();

    BswBest best;
    __m128i bestv = vzero;
    for (std::size_t d = 2; d <= m + n; ++d) {
        const auto [lo, hi] = bsw_diagonal_range(d, n, m, band);
        if (lo > hi) {  // band == 0 parity gap: keep invariants, move on
            bsw_write_empty_diagonal(d, n, m, band, vcur, gcur, hcur);
            Score* vtmp = vd2;
            vd2 = vd1;
            vd1 = vcur;
            vcur = vtmp;
            std::swap(gd1, gcur);
            std::swap(hd1, hcur);
            continue;
        }
        std::size_t i = lo;
        for (; i + 3 <= hi; i += 4) {
            const __m128i left_v =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(vd1 + i));
            const __m128i left_h =
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(hd1 + i));
            const __m128i up_v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(vd1 + i - 1));
            const __m128i up_g = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(gd1 + i - 1));
            const __m128i diag_v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(vd2 + i - 1));

            alignas(16) Score subs[4];
            const std::uint8_t* tp = t + (d - i - 1);
            const std::uint8_t* qp = q + (i - 1);
            subs[0] = sub[tp[0] * seq::kNumCodes + qp[0]];
            subs[1] = sub[tp[-1] * seq::kNumCodes + qp[1]];
            subs[2] = sub[tp[-2] * seq::kNumCodes + qp[2]];
            subs[3] = sub[tp[-3] * seq::kNumCodes + qp[3]];
            const __m128i subv =
                _mm_load_si128(reinterpret_cast<const __m128i*>(subs));

            const __m128i h = _mm_max_epi32(_mm_sub_epi32(left_v, vopen),
                                            _mm_sub_epi32(left_h, vext));
            const __m128i g = _mm_max_epi32(_mm_sub_epi32(up_v, vopen),
                                            _mm_sub_epi32(up_g, vext));
            __m128i val =
                _mm_max_epi32(_mm_add_epi32(diag_v, subv), vzero);
            val = _mm_max_epi32(val, _mm_max_epi32(h, g));

            _mm_storeu_si128(reinterpret_cast<__m128i*>(vcur + i), val);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(gcur + i), g);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(hcur + i), h);

            // Row-major-first max reduction (see BswBest::consider).
            if (movemask32(_mm_cmpgt_epi32(val, bestv)) != 0) {
                const Score dmax = hmax4(val);
                const int eqm = movemask32(
                    _mm_cmpeq_epi32(val, _mm_set1_epi32(dmax)));
                best.score = dmax;
                best.i = i + static_cast<std::size_t>(__builtin_ctz(
                                 static_cast<unsigned>(eqm)));
                best.j = d - best.i;
                bestv = _mm_set1_epi32(dmax);
            } else if (best.score > 0 && best.i > i) {
                const int eqm = movemask32(_mm_cmpeq_epi32(val, bestv));
                if (eqm != 0) {
                    const std::size_t ci =
                        i + static_cast<std::size_t>(__builtin_ctz(
                                static_cast<unsigned>(eqm)));
                    if (ci < best.i) {
                        best.i = ci;
                        best.j = d - ci;
                    }
                }
            }
        }
        for (; i <= hi; ++i) {
            const std::size_t j = d - i;
            const Score h = std::max(vd1[i] - open, hd1[i] - extend);
            const Score g =
                std::max(vd1[i - 1] - open, gd1[i - 1] - extend);
            Score val =
                vd2[i - 1] + sub[t[j - 1] * seq::kNumCodes + q[i - 1]];
            if (val < 0) val = 0;
            if (h > val) val = h;
            if (g > val) val = g;
            vcur[i] = val;
            gcur[i] = g;
            hcur[i] = h;
            const Score prev_best = best.score;
            best.consider(val, i, j);
            if (best.score != prev_best)
                bestv = _mm_set1_epi32(best.score);
        }
        out.cells_computed += hi - lo + 1;

        if (lo > 1) {
            vcur[lo - 1] = kScoreNegInf;
            gcur[lo - 1] = kScoreNegInf;
            hcur[lo - 1] = kScoreNegInf;
        }
        vcur[hi + 1] = kScoreNegInf;
        gcur[hi + 1] = kScoreNegInf;
        hcur[hi + 1] = kScoreNegInf;
        if (d <= m) {
            vcur[d] = 0;
            gcur[d] = kScoreNegInf;
            hcur[d] = kScoreNegInf;
        }

        Score* vtmp = vd2;
        vd2 = vd1;
        vd1 = vcur;
        vcur = vtmp;
        std::swap(gd1, gcur);
        std::swap(hd1, hcur);
    }

    out.max_score = best.score;
    out.query_max = best.i;
    out.target_max = best.j;
    return out;
}

/**
 * GACT-X stripe diagonals in 4-lane blocks — the AVX2 policy's layout
 * (see kernels_avx2.cpp and gactx_wavefront.h) at half width, with the
 * substitution scores gathered scalar-wise (SSE has no gather). All
 * integer ops are exact, so results are bit-identical to scalar.
 */
template <bool kScoreOnly>
struct GactXSse42Policy {
    __m128i vopen_, vext_, iota_;
    __m128i kdiag_, khgap_, kvgap_, khopen_, kvopen_;

    explicit GactXSse42Policy(const GactXDiagCtx& ctx)
        : vopen_(_mm_set1_epi32(ctx.open)),
          vext_(_mm_set1_epi32(ctx.extend)),
          iota_(_mm_setr_epi32(0, 1, 2, 3)),
          kdiag_(_mm_set1_epi32(detail::kDiag)),
          khgap_(_mm_set1_epi32(detail::kHGap)),
          kvgap_(_mm_set1_epi32(detail::kVGap)),
          khopen_(_mm_set1_epi32(0x4)),
          kvopen_(_mm_set1_epi32(0x8))
    {
    }

    void
    diagonal(const GactXDiagCtx& c, std::size_t dd, std::size_t rlo,
             std::size_t rhi) const
    {
        std::size_t r = rlo;
        for (; r + 3 <= rhi; r += 4) {
            const std::size_t s = r + 1;
            const __m128i left_v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.vd1 + s));
            const __m128i left_h = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.hd1 + s));
            const __m128i up_v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.vd1 + s - 1));
            const __m128i up_g = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.gd1 + s - 1));
            const __m128i diag_v = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.vd2 + s - 1));

            // Lane k: stripe row r + k, target column fdc + dd - r - k.
            alignas(16) Score subs[4];
            const std::uint8_t* tp = c.t + (c.fdc + dd - r - 1);
            const std::uint8_t* qp = c.q + r;
            subs[0] = c.sub[tp[0] * seq::kNumCodes + qp[0]];
            subs[1] = c.sub[tp[-1] * seq::kNumCodes + qp[1]];
            subs[2] = c.sub[tp[-2] * seq::kNumCodes + qp[2]];
            subs[3] = c.sub[tp[-3] * seq::kNumCodes + qp[3]];
            const __m128i subv =
                _mm_load_si128(reinterpret_cast<const __m128i*>(subs));

            const __m128i h_open = _mm_sub_epi32(left_v, vopen_);
            const __m128i h_ext = _mm_sub_epi32(left_h, vext_);
            const __m128i h = _mm_max_epi32(h_open, h_ext);

            const __m128i g_open = _mm_sub_epi32(up_v, vopen_);
            const __m128i g_ext = _mm_sub_epi32(up_g, vext_);
            const __m128i g = _mm_max_epi32(g_open, g_ext);

            const __m128i dval = _mm_add_epi32(diag_v, subv);
            const __m128i vh = _mm_max_epi32(dval, h);
            const __m128i val = _mm_max_epi32(vh, g);

            _mm_storeu_si128(reinterpret_cast<__m128i*>(c.vcur + s), val);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(c.gcur + s), g);
            _mm_storeu_si128(reinterpret_cast<__m128i*>(c.hcur + s), h);

            // Column-best fold over colmax[dd-r-3 .. dd-r], values
            // lane-reversed; strict compare keeps the smallest row.
            const std::size_t cbase = dd - r - 3;
            const __m128i valrev =
                _mm_shuffle_epi32(val, _MM_SHUFFLE(0, 1, 2, 3));
            const __m128i cm = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(c.colmax + cbase));
            const __m128i upd = _mm_cmpgt_epi32(valrev, cm);
            if (movemask32(upd) != 0) {
                _mm_storeu_si128(
                    reinterpret_cast<__m128i*>(c.colmax + cbase),
                    _mm_max_epi32(cm, valrev));
                const __m128i cb = _mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(c.colbest + cbase));
                const __m128i rrev = _mm_sub_epi32(
                    _mm_set1_epi32(static_cast<int>(r + 3)), iota_);
                _mm_storeu_si128(
                    reinterpret_cast<__m128i*>(c.colbest + cbase),
                    _mm_blendv_epi8(cb, rrev, upd));
            }

            // Pointer nibbles only exist on the traceback path; the
            // score-only instantiation elides the packed-code blend and
            // the scalar spill entirely.
            if constexpr (!kScoreOnly) {
                const __m128i not_hopen = _mm_cmpgt_epi32(h_ext, h_open);
                const __m128i not_vopen = _mm_cmpgt_epi32(g_ext, g_open);
                const __m128i mh = _mm_cmpgt_epi32(h, dval);
                const __m128i mg = _mm_cmpgt_epi32(g, vh);
                __m128i code = _mm_blendv_epi8(kdiag_, khgap_, mh);
                code = _mm_blendv_epi8(code, kvgap_, mg);
                code = _mm_or_si128(code,
                                    _mm_andnot_si128(not_hopen, khopen_));
                code = _mm_or_si128(code,
                                    _mm_andnot_si128(not_vopen, kvopen_));

                alignas(16) std::int32_t codes[4];
                _mm_store_si128(reinterpret_cast<__m128i*>(codes), code);
                std::size_t nib = c.base + dd - r;
                std::uint8_t* row = c.ptr_rows + r * c.stride;
                for (int k = 0; k < 4; ++k) {
                    std::uint8_t* byte = row + (nib >> 1);
                    const std::uint8_t cd =
                        static_cast<std::uint8_t>(codes[k]);
                    if ((nib & 1) != 0)
                        *byte =
                            static_cast<std::uint8_t>(*byte | (cd << 4));
                    else
                        *byte = cd;
                    --nib;
                    row += c.stride;
                }
            }
        }
        for (; r <= rhi; ++r) {
            if constexpr (kScoreOnly)
                gactx_cell_score_only(c, dd, r);
            else
                gactx_cell(c, dd, r);
        }
    }
};

TileResult
gactx_sse42(std::span<const std::uint8_t> target,
            std::span<const std::uint8_t> query, const GactXParams& params)
{
    return gactx_align_wavefront<GactXSse42Policy<false>>(target, query,
                                                          params);
}

TileResult
gactx_sse42_score_only(std::span<const std::uint8_t> target,
                       std::span<const std::uint8_t> query,
                       const GactXParams& params)
{
    return gactx_align_wavefront<GactXSse42Policy<true>, true>(target, query,
                                                               params);
}

}  // namespace

const KernelOps* sse42_kernel_ops() {
    // No dedicated ungapped kernel: without a hardware gather the block
    // formulation is a wash, so the registry falls back to scalar.
    static const KernelOps ops{&bsw_sse42, nullptr, &gactx_sse42,
                               &gactx_sse42_score_only};
    return &ops;
}

}  // namespace darwin::align::kernels

#else  // !defined(__SSE4_2__)

namespace darwin::align::kernels {

const KernelOps* sse42_kernel_ops() { return nullptr; }

}  // namespace darwin::align::kernels

#endif
