/**
 * Ungapped x-drop extension, scalar variant — the original kernel body,
 * moved verbatim from align/ungapped_xdrop.cpp (which is now a façade
 * over the dispatch registry). The SIMD variants must reproduce this
 * kernel bit-for-bit, including the exact early-break point (which
 * determines cells_computed) and the strict-improvement best tracking.
 */
#include <algorithm>

#include "align/kernels/bsw_kernels.h"
#include "util/logging.h"

namespace darwin::align::kernels {

UngappedResult
ungapped_xdrop_scalar(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      std::size_t seed_t, std::size_t seed_q,
                      std::size_t seed_len, const ScoringParams& scoring,
                      Score xdrop)
{
    require(seed_t + seed_len <= target.size() &&
            seed_q + seed_len <= query.size(),
            "ungapped_xdrop_extend: seed outside spans");

    UngappedResult out;

    // Score the seed span itself.
    Score seed_score = 0;
    for (std::size_t k = 0; k < seed_len; ++k) {
        seed_score +=
            scoring.substitution(target[seed_t + k], query[seed_q + k]);
        ++out.cells_computed;
    }

    // Right extension from the seed end.
    Score run = 0;
    Score best_right = 0;
    std::size_t best_right_len = 0;
    {
        std::size_t t = seed_t + seed_len;
        std::size_t q = seed_q + seed_len;
        std::size_t len = 0;
        while (t < target.size() && q < query.size()) {
            run += scoring.substitution(target[t], query[q]);
            ++t;
            ++q;
            ++len;
            ++out.cells_computed;
            if (run > best_right) {
                best_right = run;
                best_right_len = len;
            }
            if (run < best_right - xdrop)
                break;
        }
    }

    // Left extension from the seed start.
    run = 0;
    Score best_left = 0;
    std::size_t best_left_len = 0;
    {
        std::size_t len = 0;
        while (len < seed_t && len < seed_q) {
            const std::size_t t = seed_t - len - 1;
            const std::size_t q = seed_q - len - 1;
            run += scoring.substitution(target[t], query[q]);
            ++len;
            ++out.cells_computed;
            if (run > best_left) {
                best_left = run;
                best_left_len = len;
            }
            if (run < best_left - xdrop)
                break;
        }
    }

    out.score = seed_score + best_right + best_left;
    out.target_lo = seed_t - best_left_len;
    out.target_hi = seed_t + seed_len + best_right_len;
    out.query_lo = seed_q - best_left_len;
    const std::size_t mid = (out.target_hi - out.target_lo) / 2;
    out.anchor_t = out.target_lo + mid;
    out.anchor_q = out.query_lo + mid;
    return out;
}

}  // namespace darwin::align::kernels
