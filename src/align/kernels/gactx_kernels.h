/**
 * @file
 * GACT-X extension-kernel implementations behind the dispatch registry.
 *
 * The seed stripe engine marches each stripe column by column with a
 * lane-serial dependency chain (`up = val`, `g_up = g`, `diag_carry`)
 * that mirrors the systolic array but defeats SIMD. The registered
 * kernels instead sweep each stripe along anti-diagonals: within a
 * stripe of `num_pe` rows, cell (r, c) on diagonal d = r + c depends
 * only on diagonals d-1 (left and up neighbours, plus the running gap
 * rows) and d-2 (diagonal neighbour), so all lanes of a diagonal update
 * independently and vectorize. Column-granular state — the per-column
 * best (for Vmax and the X-drop stripe termination) and the stripe's
 * last-row V/G frontier — is committed when a column *completes*, i.e.
 * when its last lane computes it at diagonal c + rows - 1; columns the
 * wavefront had started beyond a terminating column are discarded, so
 * the column walk (vmax updates, termination point, cells_computed,
 * stripe_columns) replays the seed engine's sequential order exactly.
 *
 * Bit-identity contract: every kernel must return *exactly* the same
 * TileResult as `gactx_reference_align` (the seed engine) for every
 * input — max_score, the (target_max, query_max) tie-break (first
 * strictly-greater column, smallest row within a column),
 * cells_computed, stripe_columns, traceback_bytes, and the CIGAR — so
 * the hw/gactx_array cycle model stays valid under dispatch.
 * tests/kernel_diff_test.cpp enforces the contract field-for-field.
 */
#ifndef DARWIN_ALIGN_KERNELS_GACTX_KERNELS_H
#define DARWIN_ALIGN_KERNELS_GACTX_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "align/gactx.h"

namespace darwin::align::kernels {

using GactXKernelFn = TileResult (*)(std::span<const std::uint8_t> target,
                                     std::span<const std::uint8_t> query,
                                     const GactXParams& params);

/**
 * The seed column-serial stripe engine. Kept unregistered as the
 * micro-benchmark baseline and as the oracle for the differential
 * tests; the registry dispatches the wavefront kernels below.
 */
TileResult gactx_reference_align(std::span<const std::uint8_t> target,
                                 std::span<const std::uint8_t> query,
                                 const GactXParams& params);

/** Anti-diagonal stripe wavefront, tuned scalar (`scalar` entry). */
TileResult gactx_wavefront_scalar(std::span<const std::uint8_t> target,
                                  std::span<const std::uint8_t> query,
                                  const GactXParams& params);

/**
 * Score-only probe: the scalar wavefront with every traceback side
 * effect elided but *all* accounting intact (same max_score/x_max cell,
 * cells_computed, stripe_columns, traceback_bytes — and the same
 * budget charges and probe polls). Used by the batched backends'
 * score-only first pass: a probe returning max_score == 0 is the
 * complete bit-identical TileResult of an x-drop-dead tile (empty
 * CIGAR), so such tiles never pay for pointer storage.
 */
TileResult gactx_wavefront_scalar_score_only(
    std::span<const std::uint8_t> target,
    std::span<const std::uint8_t> query, const GactXParams& params);

/**
 * Reusable per-thread buffers for the wavefront kernels.
 *
 * The frontier ("BRAM") arrays are indexed by target column; the lane
 * arrays by slot r + 1 (slot 0 carries the previous stripe's frontier
 * values for lane 0, mirroring the systolic array's BRAM port). The
 * kernels maintain the invariant that every slot a later diagonal (or
 * stripe) reads was written earlier in the same call, so none of the
 * buffers is ever cleared — `prepare` only grows capacity.
 */
struct GactXScratch {
    std::vector<Score> bram_v, bram_g;  ///< previous stripe's last row
    std::vector<Score> next_v, next_g;  ///< frontier being produced
    std::vector<Score> v0, v1, v2;      ///< lane V: diag d-2, d-1, current
    std::vector<Score> g0, g1;          ///< lane G: diag d-1, current
    std::vector<Score> h0, h1;          ///< lane H: diag d-1, current
    std::vector<Score> init_left;       ///< column-0 boundary per lane
    std::vector<Score> colmax;          ///< per-column running best
    std::vector<std::int32_t> colbest;  ///< its smallest-row lane
    std::vector<std::uint8_t> ptr_rows; ///< packed stripe traceback rows

    void prepare(std::size_t n, std::size_t npe);
};

/** Per-thread scratch instance (kernels may run on pool threads). */
GactXScratch& gactx_scratch();

}  // namespace darwin::align::kernels

#endif  // DARWIN_ALIGN_KERNELS_GACTX_KERNELS_H
