#include "align/kernels/kernel_registry.h"

#include <cstdlib>
#include <sstream>

#include "align/batch.h"
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/cpu_features.h"
#include "util/logging.h"

namespace darwin::align::kernels {

KernelRegistry& KernelRegistry::instance() {
    static KernelRegistry registry;
    return registry;
}

KernelRegistry::KernelRegistry() {
    const CpuFeatures cpu = probe_cpu_features();

    // The table is explicit (no static self-registration: static-library
    // linking silently drops unreferenced registrars). Ids are stable —
    // they are published as the wga.filter.kernel gauge value.
    kernels_.push_back(KernelImpl{/*id=*/0, "scalar", /*compiled=*/true,
                                  /*cpu_ok=*/true, &bsw_wavefront_scalar,
                                  &ungapped_xdrop_scalar,
                                  &gactx_wavefront_scalar,
                                  &gactx_wavefront_scalar_score_only});

    const KernelOps* sse42 = sse42_kernel_ops();
    kernels_.push_back(KernelImpl{
        /*id=*/1, "sse42", sse42 != nullptr, cpu.sse42,
        sse42 != nullptr ? sse42->bsw : nullptr,
        sse42 != nullptr && sse42->ungapped != nullptr ? sse42->ungapped
                                                       : &ungapped_xdrop_scalar,
        sse42 != nullptr && sse42->gactx != nullptr ? sse42->gactx
                                                    : &gactx_wavefront_scalar,
        sse42 != nullptr && sse42->gactx_score_only != nullptr
            ? sse42->gactx_score_only
            : &gactx_wavefront_scalar_score_only});

    const KernelOps* avx2 = avx2_kernel_ops();
    kernels_.push_back(KernelImpl{
        /*id=*/2, "avx2", avx2 != nullptr, cpu.avx2,
        avx2 != nullptr ? avx2->bsw : nullptr,
        avx2 != nullptr && avx2->ungapped != nullptr ? avx2->ungapped
                                                     : &ungapped_xdrop_scalar,
        avx2 != nullptr && avx2->gactx != nullptr ? avx2->gactx
                                                  : &gactx_wavefront_scalar,
        avx2 != nullptr && avx2->gactx_score_only != nullptr
            ? avx2->gactx_score_only
            : &gactx_wavefront_scalar_score_only});

    active_.store(&best_usable(), std::memory_order_release);

    if (const char* env = std::getenv(kEnvVar); env != nullptr && *env != '\0')
        select(env);

    // The batch backend table (align/batch.h). Ids are stable — they
    // are published as the wga.batch.backend gauge value. cycle-model
    // lives in src/hw/backend_cycle.cpp; the static-library link
    // resolves it just like the per-ISA kernel_ops hooks.
    backends_.push_back(BackendImpl{/*id=*/0, "serial", serial_backend()});
    backends_.push_back(
        BackendImpl{/*id=*/1, "cpu-scalar", cpu_scalar_backend()});
    backends_.push_back(
        BackendImpl{/*id=*/2, "cpu-simd", cpu_simd_backend()});
    backends_.push_back(
        BackendImpl{/*id=*/3, "cycle-model", cycle_model_backend()});
    active_backend_.store(find_backend("cpu-simd"),
                          std::memory_order_release);

    if (const char* env = std::getenv(kBackendEnvVar);
        env != nullptr && *env != '\0')
        select_backend(env);
}

const KernelImpl& KernelRegistry::best_usable() const {
    const KernelImpl* best = &kernels_.front();  // scalar is always usable
    for (const KernelImpl& k : kernels_)
        if (k.usable() && k.id > best->id)
            best = &k;
    return *best;
}

const KernelImpl* KernelRegistry::find(const std::string& name) const {
    for (const KernelImpl& k : kernels_)
        if (name == k.name)
            return &k;
    return nullptr;
}

void KernelRegistry::select(const std::string& name) {
    if (name == "auto") {
        active_.store(&best_usable(), std::memory_order_release);
        return;
    }
    const KernelImpl* k = find(name);
    if (k == nullptr) {
        std::ostringstream msg;
        msg << "DARWIN_KERNEL/--kernel: unknown kernel '" << name
            << "' (valid: auto";
        for (const KernelImpl& cand : kernels_)
            msg << ", " << cand.name;
        msg << ")";
        fatal(msg.str());
    }
    if (!k->usable()) {
        std::ostringstream msg;
        msg << "DARWIN_KERNEL/--kernel: kernel '" << name << "' is "
            << (!k->compiled ? "not compiled into this build"
                             : "not supported by this CPU");
        fatal(msg.str());
    }
    active_.store(k, std::memory_order_release);
}

const BackendImpl* KernelRegistry::find_backend(const std::string& name) const {
    for (const BackendImpl& b : backends_)
        if (name == b.name)
            return &b;
    return nullptr;
}

void KernelRegistry::select_backend(const std::string& name) {
    if (name == "auto") {
        active_backend_.store(find_backend("cpu-simd"),
                              std::memory_order_release);
        return;
    }
    const BackendImpl* b = find_backend(name);
    if (b == nullptr) {
        std::ostringstream msg;
        msg << "DARWIN_BACKEND/--backend: unknown backend '" << name
            << "' (valid: auto";
        for (const BackendImpl& cand : backends_)
            msg << ", " << cand.name;
        msg << ")";
        fatal(msg.str());
    }
    active_backend_.store(b, std::memory_order_release);
}

}  // namespace darwin::align::kernels
