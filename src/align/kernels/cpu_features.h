/**
 * @file
 * Runtime CPU feature probing for the kernel dispatch registry.
 *
 * The vectorized filter kernels are compiled per-ISA (see
 * src/CMakeLists.txt: kernels_sse42.cpp / kernels_avx2.cpp get -msse4.2 /
 * -mavx2); whether the *running* CPU can execute them is a separate
 * question answered here, once, at registry construction.
 */
#ifndef DARWIN_ALIGN_KERNELS_CPU_FEATURES_H
#define DARWIN_ALIGN_KERNELS_CPU_FEATURES_H

namespace darwin::align::kernels {

/** ISA extensions the dispatch registry cares about. */
struct CpuFeatures {
    bool sse42 = false;
    bool avx2 = false;
};

/**
 * Probe the running CPU. On x86 this uses the compiler's CPUID support
 * (which also accounts for OS XSAVE state for AVX2); on other
 * architectures everything is false and only the scalar kernels run.
 */
CpuFeatures probe_cpu_features();

}  // namespace darwin::align::kernels

#endif  // DARWIN_ALIGN_KERNELS_CPU_FEATURES_H
