/**
 * The CPU batch backends (batch.h): `serial`, `cpu-scalar`, `cpu-simd`.
 *
 * Tiles in a batch are independent, so every backend runs them as a
 * plain loop over the batch — `cpu-simd` interleaves that loop across a
 * ThreadPool when the flush carries one, and optionally front-runs the
 * GACT-X tiles with a score-only probe pass so tiles that die on the
 * x-drop test never touch the traceback machinery. All three produce
 * per-tile results bit-identical to the single-tile façades for any
 * batch size, order, or thread count.
 */
#include <vector>

#include "align/batch.h"
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/gactx_kernels.h"
#include "align/kernels/kernel_registry.h"
#include "fault/cancel.h"
#include "util/thread_pool.h"

namespace darwin::align {

namespace {

/** One BSW tile with the same probe/budget surface as the
 *  banded_smith_waterman façade: poll `filter.tile` before the kernel,
 *  charge the cell budget after — so batched execution preserves fault
 *  injection and budget accounting per tile. */
template <typename Fn>
BswResult
bsw_tile_probed(const Fn& fn, std::span<const std::uint8_t> target,
                std::span<const std::uint8_t> query,
                const ScoringParams& scoring, std::size_t band)
{
    fault::poll("filter.tile");
    BswResult result = fn(target, query, scoring, band);
    fault::charge_cells(result.cells_computed);
    return result;
}

/** Run body(0..n-1), across the pool when one is given. Each index is
 *  its own grain so a flush's tiles spread over all workers. */
template <typename Body>
void
for_each_tile(ThreadPool* pool, std::size_t n, const Body& body)
{
    if (pool != nullptr && n > 1) {
        pool->parallel_for(0, n, body, 1);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
    }
}

/** `serial` (id 0): one-at-a-time dispatch through the single-tile
 *  façade path — the baseline the batched backends must match. The
 *  staging layers special-case this id and keep their legacy per-tile
 *  loops, but the backend is still fully functional so differential
 *  tests can drive every id through the same interface. */
class SerialBackend : public AlignBackend {
  public:
    void
    bsw_batch(const TileBatch& batch, const ScoringParams& scoring,
              std::size_t band, const BatchOptions&,
              std::span<BswResult> out, BatchExecStats*) const override
    {
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = banded_smith_waterman(batch.target(i), batch.query(i),
                                           scoring, band);
    }

    void
    gactx_batch(const TileBatch& batch, const GactXParams& params,
                const BatchOptions&, std::span<TileResult> out,
                BatchExecStats*) const override
    {
        const GactXTileAligner aligner(params);
        for (std::size_t i = 0; i < batch.size(); ++i)
            out[i] = aligner.align_tile(batch.target(i), batch.query(i));
    }
};

/** `cpu-scalar` (id 1): batched staging, scalar kernels regardless of
 *  the active kernel selection — the deterministic batched reference. */
class CpuScalarBackend : public AlignBackend {
  public:
    void
    bsw_batch(const TileBatch& batch, const ScoringParams& scoring,
              std::size_t band, const BatchOptions& options,
              std::span<BswResult> out, BatchExecStats*) const override
    {
        for_each_tile(options.pool, batch.size(), [&](std::size_t i) {
            out[i] = bsw_tile_probed(kernels::bsw_wavefront_scalar,
                                     batch.target(i), batch.query(i),
                                     scoring, band);
        });
    }

    void
    gactx_batch(const TileBatch& batch, const GactXParams& params,
                const BatchOptions& options, std::span<TileResult> out,
                BatchExecStats*) const override
    {
        for_each_tile(options.pool, batch.size(), [&](std::size_t i) {
            out[i] = kernels::gactx_wavefront_scalar(
                batch.target(i), batch.query(i), params);
        });
    }
};

/** `cpu-simd` (id 2): the registry's active (vectorized) kernel per
 *  tile, cross-tile interleaving over the flush's pool, and the
 *  score-only first pass when the staging layer requests it. */
class CpuSimdBackend : public AlignBackend {
  public:
    void
    bsw_batch(const TileBatch& batch, const ScoringParams& scoring,
              std::size_t band, const BatchOptions& options,
              std::span<BswResult> out, BatchExecStats*) const override
    {
        const kernels::BswKernelFn fn =
            kernels::KernelRegistry::instance().active().bsw;
        for_each_tile(options.pool, batch.size(), [&](std::size_t i) {
            out[i] = bsw_tile_probed(fn, batch.target(i), batch.query(i),
                                     scoring, band);
        });
    }

    void
    gactx_batch(const TileBatch& batch, const GactXParams& params,
                const BatchOptions& options, std::span<TileResult> out,
                BatchExecStats* stats) const override
    {
        const kernels::KernelImpl& impl =
            kernels::KernelRegistry::instance().active();
        const kernels::GactXKernelFn fn = impl.gactx;
        const std::size_t n = batch.size();
        if (!options.probe_score_only) {
            for_each_tile(options.pool, n, [&](std::size_t i) {
                out[i] = fn(batch.target(i), batch.query(i), params);
            });
            return;
        }

        // Score-only first pass through the active kernel's dedicated
        // entry (SIMD where compiled). A probe with max_score == 0 IS
        // the tile's full result (dead on x-drop: best cell at the
        // origin, empty CIGAR — see gactx_align_wavefront's kScoreOnly
        // contract), so only surviving tiles run the full kernel.
        // Probes re-charge cell/heap budgets for the tiles they visit,
        // matching what the hardware's score-only pre-pass would
        // really spend.
        const kernels::GactXKernelFn probe_fn = impl.gactx_score_only;
        std::vector<std::uint8_t> dead(n, 0);
        for_each_tile(options.pool, n, [&](std::size_t i) {
            TileResult probe =
                probe_fn(batch.target(i), batch.query(i), params);
            if (probe.max_score == 0) {
                dead[i] = 1;
                out[i] = std::move(probe);
            }
        });
        std::vector<std::size_t> live;
        live.reserve(n);
        std::uint64_t hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (dead[i])
                ++hits;
            else
                live.push_back(i);
        }
        for_each_tile(options.pool, live.size(), [&](std::size_t k) {
            const std::size_t i = live[k];
            out[i] = fn(batch.target(i), batch.query(i), params);
        });
        if (stats != nullptr)
            stats->score_only_hits += hits;
    }
};

}  // namespace

const AlignBackend*
serial_backend()
{
    static const SerialBackend backend;
    return &backend;
}

const AlignBackend*
cpu_scalar_backend()
{
    static const CpuScalarBackend backend;
    return &backend;
}

const AlignBackend*
cpu_simd_backend()
{
    static const CpuSimdBackend backend;
    return &backend;
}

}  // namespace darwin::align
