/**
 * AVX2 filter kernels (8 x int32 lanes). Compiled with -mavx2 when the
 * compiler supports it (see src/CMakeLists.txt); otherwise the stub at
 * the bottom reports the ISA as uncompiled and the registry skips it.
 *
 * Banded SW: the wavefront layout of bsw_wavefront.cpp with the inner
 * diagonal loop in 8-lane blocks — contiguous loads of the three
 * neighbour diagonals, substitution scores fetched with a hardware
 * gather from the flattened 5x5 matrix, and a movemask-guarded max
 * reduction that reproduces the row-major-first tie-break. Ungapped
 * x-drop: substitution scores are gathered in 8-cell blocks and the
 * run/best/break chain is evaluated in-register — an inclusive prefix
 * sum gives every running score in the block, an inclusive prefix max
 * gives every intermediate best, and two compare/movemask steps locate
 * the last best-improving lane and the first x-drop break lane. The
 * lane arithmetic reproduces the scalar chain exactly (same strict-
 * greater best update, same post-update break test), so the early
 * termination point (and cells_computed) never diverges from scalar.
 * All integer ops are exact, so results are bit-identical.
 */
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/gactx_wavefront.h"
#include "align/kernels/kernel_registry.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "util/logging.h"

namespace darwin::align::kernels {
namespace {

inline Score hmax8(__m256i v) {
    __m128i m = _mm_max_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(1, 0, 3, 2)));
    m = _mm_max_epi32(m, _mm_shuffle_epi32(m, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(m);
}

inline Score hsum8(__m256i v) {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

inline int movemask32(__m256i v) {
    return _mm256_movemask_ps(_mm256_castsi256_ps(v));
}

/** 8 base codes widened to int32 lanes. */
inline __m256i load_codes8(const std::uint8_t* p) {
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

/** Substitution scores for 8 (target, query) code pairs. */
inline __m256i gather_subs(const Score* sub, __m256i tc, __m256i qc) {
    const __m256i idx = _mm256_add_epi32(
        _mm256_mullo_epi32(tc, _mm256_set1_epi32(seq::kNumCodes)), qc);
    return _mm256_i32gather_epi32(reinterpret_cast<const int*>(sub), idx, 4);
}

/** Inclusive 8-lane prefix sum (lane b = x[0] + ... + x[b]). */
inline __m256i prefix_sum8(__m256i x) {
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
    x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
    // Propagate the low half's total into every high-half lane.
    __m256i low = _mm256_permute2x128_si256(x, x, 0x08);
    low = _mm256_shuffle_epi32(low, _MM_SHUFFLE(3, 3, 3, 3));
    return _mm256_add_epi32(x, low);
}

/** Inclusive 8-lane prefix max (shifted-in lanes act as -inf). */
inline __m256i prefix_max8(__m256i x) {
    const __m256i ninf = _mm256_set1_epi32(kScoreNegInf);
    __m256i s = _mm256_permutevar8x32_epi32(
        x, _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6));
    x = _mm256_max_epi32(x, _mm256_blend_epi32(s, ninf, 0x01));
    s = _mm256_permutevar8x32_epi32(
        x, _mm256_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5));
    x = _mm256_max_epi32(x, _mm256_blend_epi32(s, ninf, 0x03));
    s = _mm256_permutevar8x32_epi32(
        x, _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3));
    x = _mm256_max_epi32(x, _mm256_blend_epi32(s, ninf, 0x0F));
    return x;
}

BswResult
bsw_avx2(std::span<const std::uint8_t> target,
         std::span<const std::uint8_t> query,
         const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    WavefrontScratch& ws = wavefront_scratch();
    ws.prepare(m);
    Score* vd2 = ws.v0.data();
    Score* vd1 = ws.v1.data();
    Score* vcur = ws.v2.data();
    Score* gd1 = ws.g0.data();
    Score* gcur = ws.g1.data();
    Score* hd1 = ws.h0.data();
    Score* hcur = ws.h1.data();

    const Score open = scoring.gap_open;
    const Score extend = scoring.gap_extend;
    const Score* sub = scoring.matrix.front().data();
    const std::uint8_t* t = target.data();
    const std::uint8_t* q = query.data();

    const __m256i vopen = _mm256_set1_epi32(open);
    const __m256i vext = _mm256_set1_epi32(extend);
    const __m256i vzero = _mm256_setzero_si256();
    const __m256i krev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);

    BswBest best;
    __m256i bestv = vzero;
    for (std::size_t d = 2; d <= m + n; ++d) {
        const auto [lo, hi] = bsw_diagonal_range(d, n, m, band);
        if (lo > hi) {  // band == 0 parity gap: keep invariants, move on
            bsw_write_empty_diagonal(d, n, m, band, vcur, gcur, hcur);
            Score* vtmp = vd2;
            vd2 = vd1;
            vd1 = vcur;
            vcur = vtmp;
            std::swap(gd1, gcur);
            std::swap(hd1, hcur);
            continue;
        }
        std::size_t i = lo;
        for (; i + 7 <= hi; i += 8) {
            const __m256i left_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(vd1 + i));
            const __m256i left_h = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(hd1 + i));
            const __m256i up_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(vd1 + i - 1));
            const __m256i up_g = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(gd1 + i - 1));
            const __m256i diag_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(vd2 + i - 1));

            // Lane k handles cell (i+k, d-i-k): query codes load forward
            // from q[i-1], target codes load as 8 bytes ending at
            // t[d-i-1] and are lane-reversed.
            const __m256i qc = load_codes8(q + (i - 1));
            const __m256i tc = _mm256_permutevar8x32_epi32(
                load_codes8(t + (d - i - 8)), krev);
            const __m256i subv = gather_subs(sub, tc, qc);

            const __m256i h =
                _mm256_max_epi32(_mm256_sub_epi32(left_v, vopen),
                                 _mm256_sub_epi32(left_h, vext));
            const __m256i g =
                _mm256_max_epi32(_mm256_sub_epi32(up_v, vopen),
                                 _mm256_sub_epi32(up_g, vext));
            __m256i val =
                _mm256_max_epi32(_mm256_add_epi32(diag_v, subv), vzero);
            val = _mm256_max_epi32(val, _mm256_max_epi32(h, g));

            _mm256_storeu_si256(reinterpret_cast<__m256i*>(vcur + i), val);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(gcur + i), g);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(hcur + i), h);

            // Row-major-first max reduction (see BswBest::consider).
            if (movemask32(_mm256_cmpgt_epi32(val, bestv)) != 0) {
                const Score dmax = hmax8(val);
                const int eqm = movemask32(
                    _mm256_cmpeq_epi32(val, _mm256_set1_epi32(dmax)));
                best.score = dmax;
                best.i = i + static_cast<std::size_t>(__builtin_ctz(
                                 static_cast<unsigned>(eqm)));
                best.j = d - best.i;
                bestv = _mm256_set1_epi32(dmax);
            } else if (best.score > 0 && best.i > i) {
                const int eqm = movemask32(_mm256_cmpeq_epi32(val, bestv));
                if (eqm != 0) {
                    const std::size_t ci =
                        i + static_cast<std::size_t>(__builtin_ctz(
                                static_cast<unsigned>(eqm)));
                    if (ci < best.i) {
                        best.i = ci;
                        best.j = d - ci;
                    }
                }
            }
        }
        for (; i <= hi; ++i) {
            const std::size_t j = d - i;
            const Score h = std::max(vd1[i] - open, hd1[i] - extend);
            const Score g =
                std::max(vd1[i - 1] - open, gd1[i - 1] - extend);
            Score val =
                vd2[i - 1] + sub[t[j - 1] * seq::kNumCodes + q[i - 1]];
            if (val < 0) val = 0;
            if (h > val) val = h;
            if (g > val) val = g;
            vcur[i] = val;
            gcur[i] = g;
            hcur[i] = h;
            const Score prev_best = best.score;
            best.consider(val, i, j);
            if (best.score != prev_best)
                bestv = _mm256_set1_epi32(best.score);
        }
        out.cells_computed += hi - lo + 1;

        if (lo > 1) {
            vcur[lo - 1] = kScoreNegInf;
            gcur[lo - 1] = kScoreNegInf;
            hcur[lo - 1] = kScoreNegInf;
        }
        vcur[hi + 1] = kScoreNegInf;
        gcur[hi + 1] = kScoreNegInf;
        hcur[hi + 1] = kScoreNegInf;
        if (d <= m) {
            vcur[d] = 0;
            gcur[d] = kScoreNegInf;
            hcur[d] = kScoreNegInf;
        }

        Score* vtmp = vd2;
        vd2 = vd1;
        vd1 = vcur;
        vcur = vtmp;
        std::swap(gd1, gcur);
        std::swap(hd1, hcur);
    }

    out.max_score = best.score;
    out.query_max = best.i;
    out.target_max = best.j;
    return out;
}

UngappedResult
ungapped_avx2(std::span<const std::uint8_t> target,
              std::span<const std::uint8_t> query, std::size_t seed_t,
              std::size_t seed_q, std::size_t seed_len,
              const ScoringParams& scoring, Score xdrop)
{
    require(seed_t + seed_len <= target.size() &&
            seed_q + seed_len <= query.size(),
            "ungapped_xdrop_extend: seed outside spans");

    UngappedResult out;
    const Score* sub = scoring.matrix.front().data();
    const std::uint8_t* tb = target.data();
    const std::uint8_t* qb = query.data();
    const __m256i krev = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);

    // Seed span: integer adds are exact and order-independent, so the
    // vector sum matches the scalar accumulation.
    Score seed_score = 0;
    {
        std::size_t k = 0;
        __m256i acc = _mm256_setzero_si256();
        for (; k + 8 <= seed_len; k += 8)
            acc = _mm256_add_epi32(
                acc, gather_subs(sub, load_codes8(tb + seed_t + k),
                                 load_codes8(qb + seed_q + k)));
        seed_score = hsum8(acc);
        for (; k < seed_len; ++k)
            seed_score += sub[tb[seed_t + k] * seq::kNumCodes +
                              qb[seed_q + k]];
        out.cells_computed += seed_len;
    }

    // One 8-cell block of the run/best/break chain, fully in-register.
    // P[b] = running score after cell b (prefix sum + incoming run);
    // best before cell b = max(incoming best, M[b-1]) where M is the
    // prefix max of P; best after cell b = max(incoming best, M[b]).
    // The improve mask marks lanes where the scalar chain would update
    // best (strict >), the break mask lanes where the post-update x-drop
    // test fires; the first break lane bounds both. Returns the number
    // of cells consumed (8, or fewer when the x-drop test fired).
    const __m256i xdropv = _mm256_set1_epi32(xdrop);
    const auto scan8 = [&](__m256i subs, Score& run, Score& best,
                           std::size_t& best_len, std::size_t len_before,
                           bool* broke) -> std::size_t {
        const __m256i p = _mm256_add_epi32(prefix_sum8(subs),
                                           _mm256_set1_epi32(run));
        const __m256i m = prefix_max8(p);
        const __m256i bestv = _mm256_set1_epi32(best);
        __m256i mprev = _mm256_permutevar8x32_epi32(
            m, _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6));
        mprev = _mm256_blend_epi32(mprev,
                                   _mm256_set1_epi32(kScoreNegInf), 0x01);
        const __m256i best_before = _mm256_max_epi32(bestv, mprev);
        const __m256i best_after = _mm256_max_epi32(bestv, m);
        const unsigned improve = static_cast<unsigned>(
            movemask32(_mm256_cmpgt_epi32(p, best_before)));
        const unsigned brk = static_cast<unsigned>(movemask32(
            _mm256_cmpgt_epi32(_mm256_sub_epi32(best_after, xdropv), p)));
        alignas(32) Score pbuf[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(pbuf), p);
        std::size_t consumed = 8;
        unsigned mask = improve;
        if (brk != 0) {
            const int bstar = __builtin_ctz(brk);
            consumed = static_cast<std::size_t>(bstar) + 1;
            mask &= (2u << bstar) - 1;  // lanes at or before the break
            *broke = true;
        }
        if (mask != 0) {
            const int last = 31 - __builtin_clz(mask);
            best = pbuf[last];
            best_len = len_before + static_cast<std::size_t>(last) + 1;
        }
        run = pbuf[7];  // stale after a break; the caller stops anyway
        return consumed;
    };

    // Right extension: 8-cell gathered blocks + scalar tail.
    Score run = 0;
    Score best_right = 0;
    std::size_t best_right_len = 0;
    {
        const std::size_t avail =
            std::min(target.size() - (seed_t + seed_len),
                     query.size() - (seed_q + seed_len));
        const std::uint8_t* tp = tb + seed_t + seed_len;
        const std::uint8_t* qp = qb + seed_q + seed_len;
        std::size_t len = 0;
        bool broke = false;
        while (len + 8 <= avail && !broke) {
            const __m256i subs = gather_subs(sub, load_codes8(tp + len),
                                             load_codes8(qp + len));
            const std::size_t consumed =
                scan8(subs, run, best_right, best_right_len, len, &broke);
            out.cells_computed += consumed;
            len += consumed;
        }
        while (len < avail && !broke) {
            run += sub[tp[len] * seq::kNumCodes + qp[len]];
            ++len;
            ++out.cells_computed;
            if (run > best_right) {
                best_right = run;
                best_right_len = len;
            }
            if (run < best_right - xdrop)
                broke = true;
        }
    }

    // Left extension: cell len+b reads t[seed_t - len - b - 1], so an
    // 8-byte block is a reversed contiguous load.
    run = 0;
    Score best_left = 0;
    std::size_t best_left_len = 0;
    {
        const std::size_t avail = std::min(seed_t, seed_q);
        std::size_t len = 0;
        bool broke = false;
        while (len + 8 <= avail && !broke) {
            const __m256i tc = _mm256_permutevar8x32_epi32(
                load_codes8(tb + seed_t - len - 8), krev);
            const __m256i qc = _mm256_permutevar8x32_epi32(
                load_codes8(qb + seed_q - len - 8), krev);
            const std::size_t consumed =
                scan8(gather_subs(sub, tc, qc), run, best_left,
                      best_left_len, len, &broke);
            out.cells_computed += consumed;
            len += consumed;
        }
        while (len < avail && !broke) {
            run += sub[tb[seed_t - len - 1] * seq::kNumCodes +
                       qb[seed_q - len - 1]];
            ++len;
            ++out.cells_computed;
            if (run > best_left) {
                best_left = run;
                best_left_len = len;
            }
            if (run < best_left - xdrop)
                broke = true;
        }
    }

    out.score = seed_score + best_right + best_left;
    out.target_lo = seed_t - best_left_len;
    out.target_hi = seed_t + seed_len + best_right_len;
    out.query_lo = seed_q - best_left_len;
    const std::size_t mid = (out.target_hi - out.target_lo) / 2;
    out.anchor_t = out.target_lo + mid;
    out.anchor_q = out.query_lo + mid;
    return out;
}

/**
 * GACT-X stripe diagonals in 8-lane blocks (see gactx_wavefront.h for
 * the dataflow). Lane k of a block handles stripe row r + k and target
 * column fdc + dd - r - k: neighbour loads are contiguous in the
 * slot-indexed lane buffers, query codes load forward, target codes are
 * a lane-reversed 8-byte load, and the per-column best fold hits
 * colmax[dd-r-7 .. dd-r] with the value vector reversed (strict
 * compare keeps the smallest-row winner the column walk demands).
 * Pointer nibbles alternate parity lane to lane, so the packed codes
 * are spilled once and stored with eight scalar byte ops.
 */
template <bool kScoreOnly>
struct GactXAvx2Policy {
    __m256i vopen_, vext_, krev_, iota_;
    __m256i kdiag_, khgap_, kvgap_, khopen_, kvopen_;

    explicit GactXAvx2Policy(const GactXDiagCtx& ctx)
        : vopen_(_mm256_set1_epi32(ctx.open)),
          vext_(_mm256_set1_epi32(ctx.extend)),
          krev_(_mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0)),
          iota_(_mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7)),
          kdiag_(_mm256_set1_epi32(detail::kDiag)),
          khgap_(_mm256_set1_epi32(detail::kHGap)),
          kvgap_(_mm256_set1_epi32(detail::kVGap)),
          khopen_(_mm256_set1_epi32(0x4)),
          kvopen_(_mm256_set1_epi32(0x8))
    {
    }

    void
    diagonal(const GactXDiagCtx& c, std::size_t dd, std::size_t rlo,
             std::size_t rhi) const
    {
        std::size_t r = rlo;
        for (; r + 7 <= rhi; r += 8) {
            const std::size_t s = r + 1;
            const __m256i left_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.vd1 + s));
            const __m256i left_h = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.hd1 + s));
            const __m256i up_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.vd1 + s - 1));
            const __m256i up_g = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.gd1 + s - 1));
            const __m256i diag_v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.vd2 + s - 1));

            const __m256i qc = load_codes8(c.q + r);
            const __m256i tc = _mm256_permutevar8x32_epi32(
                load_codes8(c.t + (c.fdc + dd - r - 8)), krev_);
            const __m256i subv = gather_subs(c.sub, tc, qc);

            const __m256i h_open = _mm256_sub_epi32(left_v, vopen_);
            const __m256i h_ext = _mm256_sub_epi32(left_h, vext_);
            const __m256i h = _mm256_max_epi32(h_open, h_ext);

            const __m256i g_open = _mm256_sub_epi32(up_v, vopen_);
            const __m256i g_ext = _mm256_sub_epi32(up_g, vext_);
            const __m256i g = _mm256_max_epi32(g_open, g_ext);

            const __m256i dval = _mm256_add_epi32(diag_v, subv);
            const __m256i vh = _mm256_max_epi32(dval, h);
            const __m256i val = _mm256_max_epi32(vh, g);

            _mm256_storeu_si256(reinterpret_cast<__m256i*>(c.vcur + s),
                                val);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(c.gcur + s),
                                g);
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(c.hcur + s),
                                h);

            const std::size_t cbase = dd - r - 7;
            const __m256i valrev =
                _mm256_permutevar8x32_epi32(val, krev_);
            const __m256i cm = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(c.colmax + cbase));
            const __m256i upd = _mm256_cmpgt_epi32(valrev, cm);
            if (movemask32(upd) != 0) {
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(c.colmax + cbase),
                    _mm256_max_epi32(cm, valrev));
                const __m256i cb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(c.colbest + cbase));
                const __m256i rrev = _mm256_sub_epi32(
                    _mm256_set1_epi32(static_cast<int>(r + 7)), iota_);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i*>(c.colbest + cbase),
                    _mm256_blendv_epi8(cb, rrev, upd));
            }

            // Pointer nibbles only exist on the traceback path; the
            // score-only instantiation elides the packed-code blend and
            // the scalar spill entirely.
            if constexpr (!kScoreOnly) {
                const __m256i not_hopen =
                    _mm256_cmpgt_epi32(h_ext, h_open);
                const __m256i not_vopen =
                    _mm256_cmpgt_epi32(g_ext, g_open);
                const __m256i mh = _mm256_cmpgt_epi32(h, dval);
                const __m256i mg = _mm256_cmpgt_epi32(g, vh);
                __m256i code = _mm256_blendv_epi8(kdiag_, khgap_, mh);
                code = _mm256_blendv_epi8(code, kvgap_, mg);
                code = _mm256_or_si256(
                    code, _mm256_andnot_si256(not_hopen, khopen_));
                code = _mm256_or_si256(
                    code, _mm256_andnot_si256(not_vopen, kvopen_));

                alignas(32) std::int32_t codes[8];
                _mm256_store_si256(reinterpret_cast<__m256i*>(codes),
                                   code);
                std::size_t nib = c.base + dd - r;
                std::uint8_t* row = c.ptr_rows + r * c.stride;
                for (int k = 0; k < 8; ++k) {
                    std::uint8_t* byte = row + (nib >> 1);
                    const std::uint8_t cd =
                        static_cast<std::uint8_t>(codes[k]);
                    if ((nib & 1) != 0)
                        *byte =
                            static_cast<std::uint8_t>(*byte | (cd << 4));
                    else
                        *byte = cd;
                    --nib;
                    row += c.stride;
                }
            }
        }
        for (; r <= rhi; ++r) {
            if constexpr (kScoreOnly)
                gactx_cell_score_only(c, dd, r);
            else
                gactx_cell(c, dd, r);
        }
    }
};

TileResult
gactx_avx2(std::span<const std::uint8_t> target,
           std::span<const std::uint8_t> query, const GactXParams& params)
{
    return gactx_align_wavefront<GactXAvx2Policy<false>>(target, query,
                                                         params);
}

TileResult
gactx_avx2_score_only(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const GactXParams& params)
{
    return gactx_align_wavefront<GactXAvx2Policy<true>, true>(target, query,
                                                              params);
}

}  // namespace

const KernelOps* avx2_kernel_ops() {
    static const KernelOps ops{&bsw_avx2, &ungapped_avx2, &gactx_avx2,
                               &gactx_avx2_score_only};
    return &ops;
}

}  // namespace darwin::align::kernels

#else  // !defined(__AVX2__)

namespace darwin::align::kernels {

const KernelOps* avx2_kernel_ops() { return nullptr; }

}  // namespace darwin::align::kernels

#endif
