/**
 * @file
 * Runtime dispatch registry for the filter and extension kernels.
 *
 * All implementations of the three alignment kernels (banded
 * Smith-Waterman and ungapped x-drop extension, see bsw_kernels.h; the
 * GACT-X tile extension engine, see gactx_kernels.h) are listed in a
 * fixed table with stable ids. At startup the registry probes the CPU
 * (cpu_features.h) and selects the fastest usable entry; the selection
 * can be overridden with the `DARWIN_KERNEL` environment variable or the
 * `--kernel` CLI flag (tools/obs_support.h), both taking
 * `auto|scalar|sse42|avx2`.
 *
 * `banded_smith_waterman()`, `ungapped_xdrop_extend()` and
 * `GactXTileAligner::align_tile()` are thin façades over the active
 * entry, so every caller (wga/filter_stage, wga/extend_stage, the batch
 * scheduler, benches) transparently picks up the fast path. The active
 * id is published as the `wga.filter.kernel` and `wga.extend.kernel`
 * gauges.
 *
 * The registry also hosts the *batch backend* table (align/batch.h):
 * how many-tile batches execute, orthogonal to which kernel computes a
 * tile. Overridden with `DARWIN_BACKEND` or `--backend`, taking
 * `auto|serial|cpu-scalar|cpu-simd|cycle-model` ("auto" resolves to
 * cpu-simd). The active backend id is published as the
 * `wga.batch.backend` gauge.
 */
#ifndef DARWIN_ALIGN_KERNELS_KERNEL_REGISTRY_H
#define DARWIN_ALIGN_KERNELS_KERNEL_REGISTRY_H

#include <atomic>
#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "align/kernels/gactx_kernels.h"
#include "align/ungapped_xdrop.h"

namespace darwin::align {
class AlignBackend;
}

namespace darwin::align::kernels {

using BswKernelFn = BswResult (*)(std::span<const std::uint8_t> target,
                                  std::span<const std::uint8_t> query,
                                  const ScoringParams& scoring,
                                  std::size_t band);

using UngappedKernelFn = UngappedResult (*)(
    std::span<const std::uint8_t> target,
    std::span<const std::uint8_t> query, std::size_t seed_t,
    std::size_t seed_q, std::size_t seed_len, const ScoringParams& scoring,
    Score xdrop);

/** One registered implementation of the filter + extension kernels. */
struct KernelImpl {
    int id = 0;              ///< stable: 0 scalar, 1 sse42, 2 avx2
    const char* name = "";   ///< the DARWIN_KERNEL spelling
    bool compiled = false;   ///< translation unit built with the ISA
    bool cpu_ok = false;     ///< running CPU supports the ISA
    BswKernelFn bsw = nullptr;
    UngappedKernelFn ungapped = nullptr;
    GactXKernelFn gactx = nullptr;
    /** GACT-X score-only variant (no traceback machinery): same scores
     *  and accounting as gactx, empty CIGAR. Used by the cpu-simd
     *  backend's score-only probe pass (align/batch.h). */
    GactXKernelFn gactx_score_only = nullptr;

    bool usable() const { return compiled && cpu_ok && bsw != nullptr; }
};

/**
 * ISA kernel entry points, exported by each per-ISA translation unit.
 * Returns nullptr when the TU was compiled without the ISA (non-x86
 * build or compiler without -msse4.2/-mavx2) so the registry can mark
 * the entry uncompiled instead of link-failing.
 */
struct KernelOps {
    BswKernelFn bsw = nullptr;
    UngappedKernelFn ungapped = nullptr;  ///< nullptr: fall back to scalar
    GactXKernelFn gactx = nullptr;        ///< nullptr: fall back to scalar
    GactXKernelFn gactx_score_only = nullptr;  ///< ditto
};
const KernelOps* sse42_kernel_ops();
const KernelOps* avx2_kernel_ops();

/** One registered batch backend (align/batch.h). Every backend is
 *  always usable — batching strategy does not depend on the CPU. */
struct BackendImpl {
    int id = 0;             ///< stable: 0 serial, 1 cpu-scalar,
                            ///<         2 cpu-simd, 3 cycle-model
    const char* name = "";  ///< the DARWIN_BACKEND spelling
    const AlignBackend* backend = nullptr;
};

/**
 * Process-wide kernel table + active selection.
 *
 * Construction applies `DARWIN_KERNEL` (unset/empty means "auto");
 * selection errors go through fatal() with an actionable message.
 * The active pointer is atomic: `select()` may race with in-flight
 * alignment calls without tearing, though tests that compare kernels
 * should quiesce between selections.
 */
class KernelRegistry {
  public:
    static constexpr const char* kEnvVar = "DARWIN_KERNEL";
    static constexpr const char* kBackendEnvVar = "DARWIN_BACKEND";

    static KernelRegistry& instance();

    /** All entries in id order (including uncompiled/unsupported ones). */
    const std::vector<KernelImpl>& kernels() const { return kernels_; }

    /** The entry dispatched by the façades. */
    const KernelImpl& active() const {
        return *active_.load(std::memory_order_acquire);
    }

    /**
     * Select by name: "auto" (fastest usable) or an exact kernel name.
     * fatal() — i.e. throws darwin::FatalError — on an unknown name
     * or a kernel that is not usable on this build/CPU.
     */
    void select(const std::string& name);

    /** Lookup by name; nullptr when unknown (no fatal). */
    const KernelImpl* find(const std::string& name) const;

    /** All batch backends in id order. */
    const std::vector<BackendImpl>& backends() const { return backends_; }

    /** The backend the staging layers dispatch batches through. */
    const BackendImpl& active_backend() const {
        return *active_backend_.load(std::memory_order_acquire);
    }

    /**
     * Select a batch backend: "auto" (cpu-simd) or an exact backend
     * name. fatal() on an unknown name, mirroring select().
     */
    void select_backend(const std::string& name);

    /** Lookup by name; nullptr when unknown (no fatal). */
    const BackendImpl* find_backend(const std::string& name) const;

    KernelRegistry(const KernelRegistry&) = delete;
    KernelRegistry& operator=(const KernelRegistry&) = delete;

  private:
    KernelRegistry();

    const KernelImpl& best_usable() const;

    std::vector<KernelImpl> kernels_;
    std::atomic<const KernelImpl*> active_{nullptr};
    std::vector<BackendImpl> backends_;
    std::atomic<const BackendImpl*> active_backend_{nullptr};
};

}  // namespace darwin::align::kernels

#endif  // DARWIN_ALIGN_KERNELS_KERNEL_REGISTRY_H
