/**
 * Anti-diagonal (wavefront) banded Smith-Waterman, scalar variant, plus
 * the per-thread scratch shared with the SIMD variants.
 *
 * Layout (see bsw_kernels.h): cells of diagonal d = i + j are stored at
 * slot i of the diagonal's buffer. The recurrences then read
 *
 *   left (i, j-1):  Vd1[i],   Hd1[i]      (diagonal d-1)
 *   up   (i-1, j):  Vd1[i-1], Gd1[i-1]    (diagonal d-1)
 *   diag (i-1,j-1): Vd2[i-1]              (diagonal d-2)
 *
 * all of which are contiguous in i — the property the SIMD kernels
 * exploit. Out-of-band neighbours are provided by -inf edge sentinels
 * written one slot beyond each diagonal's computed range (the range
 * moves by at most one slot per diagonal), and the alignment-start
 * boundaries V(0, *) = V(*, 0) = 0 live at slot 0 (row 0, permanent)
 * and slot d (column 0 of diagonal d, written when d <= m).
 */
#include "align/kernels/bsw_kernels.h"

namespace darwin::align::kernels {

WavefrontScratch& wavefront_scratch() {
    thread_local WavefrontScratch scratch;
    return scratch;
}

void WavefrontScratch::prepare(std::size_t m) {
    const std::size_t len = m + 2;
    for (std::vector<Score>* vec : {&v0, &v1, &v2, &g0, &g1, &h0, &h1})
        if (vec->size() < len)
            vec->resize(len, kScoreNegInf);
    // Initial state for the d = 2 iteration. Roles: v0 = diagonal 0,
    // v1 = diagonal 1, v2 = current; g0/h0 = diagonal 1, g1/h1 = current.
    v0[0] = 0;           // V(0, 0)
    v1[0] = 0;           // V(0, 1)
    v1[1] = 0;           // V(1, 0)
    v2[0] = 0;           // row-0 slot is permanently 0 in every V buffer
    g0[0] = g0[1] = kScoreNegInf;
    h0[0] = h0[1] = kScoreNegInf;
    g1[0] = kScoreNegInf;  // row-0 slot is permanently -inf in G/H
    h1[0] = kScoreNegInf;
}

BswResult
bsw_wavefront_scalar(std::span<const std::uint8_t> target,
                     std::span<const std::uint8_t> query,
                     const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    WavefrontScratch& ws = wavefront_scratch();
    ws.prepare(m);
    Score* vd2 = ws.v0.data();
    Score* vd1 = ws.v1.data();
    Score* vcur = ws.v2.data();
    Score* gd1 = ws.g0.data();
    Score* gcur = ws.g1.data();
    Score* hd1 = ws.h0.data();
    Score* hcur = ws.h1.data();

    const Score open = scoring.gap_open;
    const Score extend = scoring.gap_extend;
    const Score* sub = scoring.matrix.front().data();  // flat [t*5 + q]
    const std::uint8_t* t = target.data();
    const std::uint8_t* q = query.data();

    BswBest best;
    for (std::size_t d = 2; d <= m + n; ++d) {
        const auto [lo, hi] = bsw_diagonal_range(d, n, m, band);
        if (lo > hi) {  // band == 0 parity gap: keep invariants, move on
            bsw_write_empty_diagonal(d, n, m, band, vcur, gcur, hcur);
            Score* vtmp = vd2;
            vd2 = vd1;
            vd1 = vcur;
            vcur = vtmp;
            std::swap(gd1, gcur);
            std::swap(hd1, hcur);
            continue;
        }
        for (std::size_t i = lo; i <= hi; ++i) {
            const std::size_t j = d - i;
            const Score h =
                std::max(vd1[i] - open, hd1[i] - extend);
            const Score g =
                std::max(vd1[i - 1] - open, gd1[i - 1] - extend);
            Score val =
                vd2[i - 1] + sub[t[j - 1] * seq::kNumCodes + q[i - 1]];
            if (val < 0) val = 0;
            if (h > val) val = h;
            if (g > val) val = g;
            vcur[i] = val;
            gcur[i] = g;
            hcur[i] = h;
            best.consider(val, i, j);
        }
        out.cells_computed += hi - lo + 1;

        // Edge sentinels (skip slot 0: it is the permanent row-0
        // boundary), then the column-0 boundary of this diagonal.
        if (lo > 1) {
            vcur[lo - 1] = kScoreNegInf;
            gcur[lo - 1] = kScoreNegInf;
            hcur[lo - 1] = kScoreNegInf;
        }
        vcur[hi + 1] = kScoreNegInf;
        gcur[hi + 1] = kScoreNegInf;
        hcur[hi + 1] = kScoreNegInf;
        if (d <= m) {
            vcur[d] = 0;  // V(d, 0)
            gcur[d] = kScoreNegInf;
            hcur[d] = kScoreNegInf;
        }

        Score* vtmp = vd2;
        vd2 = vd1;
        vd1 = vcur;
        vcur = vtmp;
        std::swap(gd1, gcur);
        std::swap(hd1, hcur);
    }

    out.max_score = best.score;
    out.query_max = best.i;
    out.target_max = best.j;
    return out;
}

}  // namespace darwin::align::kernels
