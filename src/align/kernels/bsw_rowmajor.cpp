/**
 * Row-major banded Smith-Waterman — the original (seed) kernel layout,
 * kept as the baseline for bench/micro_kernels and as a second reference
 * in the differential tests. One fix over the seed version: the diagonal
 * read of a column-1 cell now sees the V(i-1, 0) = 0 boundary instead of
 * -inf, per the boundary semantics documented in banded_sw.h.
 */
#include <algorithm>
#include <vector>

#include "align/kernels/bsw_kernels.h"

namespace darwin::align::kernels {

BswResult
bsw_rowmajor_reference(std::span<const std::uint8_t> target,
                       std::span<const std::uint8_t> query,
                       const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    // Band-relative indexing: row i has frame base f(i) = i - band (the
    // column of slot k = 0, as a signed value). Reads:
    //   V(i-1, j)   = prev[k + 1];  V(i-1, j-1) = prev[k];
    // with k = j - f(i). Row 0 (frame base -band) holds V(0, j) = 0 for
    // 0 <= j <= n and -inf outside.
    const std::size_t width = 2 * band + 1;
    std::vector<Score> v_prev(width + 1, 0);
    std::vector<Score> g_prev(width + 1, kScoreNegInf);
    std::vector<Score> v_cur(width + 1, 0);
    std::vector<Score> g_cur(width + 1, kScoreNegInf);

    for (std::size_t k = 0; k <= width; ++k) {
        const std::int64_t j = static_cast<std::int64_t>(k) -
                               static_cast<std::int64_t>(band);
        v_prev[k] = (j >= 0 && j <= static_cast<std::int64_t>(n))
                        ? 0 : kScoreNegInf;
        g_prev[k] = kScoreNegInf;
    }

    for (std::size_t i = 1; i <= m; ++i) {
        const std::int64_t frame =
            static_cast<std::int64_t>(i) - static_cast<std::int64_t>(band);
        const std::size_t j_lo = i > band ? i - band : 1;
        const std::size_t j_hi = std::min(n, i + band);
        std::fill(v_cur.begin(), v_cur.end(), kScoreNegInf);
        std::fill(g_cur.begin(), g_cur.end(), kScoreNegInf);
        if (j_lo > j_hi) {
            std::swap(v_prev, v_cur);
            std::swap(g_prev, g_cur);
            continue;
        }
        Score h = kScoreNegInf;  // running H-gap within the row
        // Column 0 is the alignment-start boundary: V(i, 0) = 0.
        Score v_left = (j_lo == 1) ? 0 : kScoreNegInf;
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const std::size_t k =
                static_cast<std::size_t>(static_cast<std::int64_t>(j) -
                                         frame);
            // j == 1 reads the V(i-1, 0) = 0 boundary, which row i-1
            // never wrote into its band buffer.
            const Score diag_prev =
                (j == 1) ? 0 : ((k <= width) ? v_prev[k] : kScoreNegInf);
            const Score up_prev =
                (k + 1 <= width) ? v_prev[k + 1] : kScoreNegInf;
            const Score g_up =
                (k + 1 <= width) ? g_prev[k + 1] : kScoreNegInf;

            h = std::max(v_left - scoring.gap_open,
                         h - scoring.gap_extend);
            const Score g = std::max(up_prev - scoring.gap_open,
                                     g_up - scoring.gap_extend);
            const Score diag =
                diag_prev +
                scoring.substitution(target[j - 1], query[i - 1]);

            Score val = std::max<Score>(0, diag);
            val = std::max(val, h);
            val = std::max(val, g);

            v_cur[k] = val;
            g_cur[k] = g;
            v_left = val;
            ++out.cells_computed;

            if (val > out.max_score) {
                out.max_score = val;
                out.target_max = j;
                out.query_max = i;
            }
        }
        std::swap(v_prev, v_cur);
        std::swap(g_prev, g_cur);
    }
    return out;
}

}  // namespace darwin::align::kernels
