/**
 * Scalar GACT-X wavefront kernel and the shared per-thread scratch.
 *
 * The scalar variant instantiates the shared anti-diagonal scaffold
 * with a plain lane loop — same traversal, same buffers, and the exact
 * per-cell arithmetic the SIMD policies reuse for their tails — so
 * `DARWIN_KERNEL=scalar` exercises the wavefront dataflow itself, while
 * the seed column-serial engine survives unregistered as
 * `gactx_reference_align` (gactx_reference.cpp).
 */
#include "align/kernels/gactx_kernels.h"
#include "align/kernels/gactx_wavefront.h"

namespace darwin::align::kernels {

void
GactXScratch::prepare(std::size_t n, std::size_t npe)
{
    const auto grow = [](std::vector<Score>& v, std::size_t size) {
        if (v.size() < size)
            v.resize(size);
    };
    grow(bram_v, n + 1);
    grow(bram_g, n + 1);
    grow(next_v, n + 1);
    grow(next_g, n + 1);
    grow(v0, npe + 2);
    grow(v1, npe + 2);
    grow(v2, npe + 2);
    grow(g0, npe + 2);
    grow(g1, npe + 2);
    grow(h0, npe + 2);
    grow(h1, npe + 2);
    grow(init_left, npe);
    grow(colmax, n + 1);
    if (colbest.size() < n + 1)
        colbest.resize(n + 1);
}

GactXScratch&
gactx_scratch()
{
    thread_local GactXScratch scratch;
    return scratch;
}

namespace {

struct ScalarPolicy {
    explicit ScalarPolicy(const GactXDiagCtx&) {}

    void
    diagonal(const GactXDiagCtx& ctx, std::size_t dd, std::size_t rlo,
             std::size_t rhi) const
    {
        for (std::size_t r = rlo; r <= rhi; ++r)
            gactx_cell(ctx, dd, r);
    }
};

struct ScalarScoreOnlyPolicy {
    explicit ScalarScoreOnlyPolicy(const GactXDiagCtx&) {}

    void
    diagonal(const GactXDiagCtx& ctx, std::size_t dd, std::size_t rlo,
             std::size_t rhi) const
    {
        for (std::size_t r = rlo; r <= rhi; ++r)
            gactx_cell_score_only(ctx, dd, r);
    }
};

}  // namespace

TileResult
gactx_wavefront_scalar(std::span<const std::uint8_t> target,
                       std::span<const std::uint8_t> query,
                       const GactXParams& params)
{
    return gactx_align_wavefront<ScalarPolicy>(target, query, params);
}

TileResult
gactx_wavefront_scalar_score_only(std::span<const std::uint8_t> target,
                                  std::span<const std::uint8_t> query,
                                  const GactXParams& params)
{
    return gactx_align_wavefront<ScalarScoreOnlyPolicy,
                                 /*kScoreOnly=*/true>(target, query, params);
}

}  // namespace darwin::align::kernels
