#include "align/scoring.h"

namespace darwin::align {

ScoringParams
ScoringParams::paper_defaults()
{
    ScoringParams params;
    // Table II(a): rows/cols in A, C, G, T order.
    const Score table[4][4] = {
        {91, -90, -25, -100},
        {-90, 100, -100, -25},
        {-25, -100, 100, -90},
        {-100, -25, -90, 91},
    };
    for (int a = 0; a < seq::kNumCodes; ++a) {
        for (int b = 0; b < seq::kNumCodes; ++b) {
            if (a < seq::kNumBases && b < seq::kNumBases) {
                params.matrix[a][b] = table[a][b];
            } else {
                // N against anything is strongly penalized so alignments
                // never run through separator/ambiguity runs.
                params.matrix[a][b] = -100;
            }
        }
    }
    params.gap_open = 430;
    params.gap_extend = 30;
    return params;
}

ScoringParams
ScoringParams::unit(Score match, Score mismatch, Score open, Score extend)
{
    ScoringParams params;
    for (int a = 0; a < seq::kNumCodes; ++a) {
        for (int b = 0; b < seq::kNumCodes; ++b) {
            if (a < seq::kNumBases && b < seq::kNumBases) {
                params.matrix[a][b] = (a == b) ? match : mismatch;
            } else {
                params.matrix[a][b] = mismatch;
            }
        }
    }
    params.gap_open = open;
    params.gap_extend = extend;
    return params;
}

}  // namespace darwin::align
