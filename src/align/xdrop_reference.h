/**
 * @file
 * Row-granular X-drop extension engine.
 *
 * Needleman-Wunsch from the origin with affine gaps, where any cell whose
 * score falls below (Vmax - Y) is pruned to -inf and each row only
 * computes the surviving column window (Zhang et al.'s X-drop bound, the
 * paper's "Y-drop"). Traceback pointers are stored per row at 4 bits per
 * cell, so the engine doubles as:
 *
 *  - the *reference* for the stripe-granular GACT-X hardware algorithm
 *    (stripe windows are supersets of row windows, so GACT-X's Vmax must
 *    be >= this engine's Vmax — a test invariant), and
 *  - the GACT tile engine when constructed with an effectively infinite
 *    Y bound (GACT computes the full tile; see align/gact.h).
 */
#ifndef DARWIN_ALIGN_XDROP_REFERENCE_H
#define DARWIN_ALIGN_XDROP_REFERENCE_H

#include <limits>

#include "align/tile.h"

namespace darwin::align {

/** Configuration for the row-granular X-drop engine. */
struct XDropConfig {
    ScoringParams scoring = ScoringParams::paper_defaults();

    /** X-drop bound Y: prune cells below Vmax - ydrop. */
    Score ydrop = 9430;

    /**
     * Traceback pointer budget in bytes (4 bits per computed cell).
     * Computation stops early when the budget is exhausted, exactly as an
     * exhausted traceback BRAM would end a hardware tile.
     */
    std::uint64_t traceback_limit_bytes =
        std::numeric_limits<std::uint64_t>::max();
};

/**
 * Extend from the origin over (target x query) with X-drop pruning and
 * full traceback. Spans are expected to be tile-sized (the extension
 * driver slices tiles); the engine itself accepts any size that fits the
 * traceback budget.
 */
TileResult xdrop_extend(std::span<const std::uint8_t> target,
                        std::span<const std::uint8_t> query,
                        const XDropConfig& config);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_XDROP_REFERENCE_H
