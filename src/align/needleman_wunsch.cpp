#include "align/needleman_wunsch.h"

#include <vector>

#include "util/logging.h"

namespace darwin::align {

namespace {

enum VDir : std::uint8_t { kOrigin = 0, kDiag = 1, kHGap = 2, kVGap = 3 };

struct Pointer {
    std::uint8_t vdir : 2;
    std::uint8_t hopen : 1;
    std::uint8_t vopen : 1;
};

/** Shared full-matrix NW-from-origin DP; returns matrices via out-params. */
struct NwMatrices {
    std::size_t stride = 0;
    std::vector<Score> v;
    std::vector<Pointer> ptr;
};

NwMatrices
run_nw(std::span<const std::uint8_t> target,
       std::span<const std::uint8_t> query, const ScoringParams& scoring)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    NwMatrices out;
    out.stride = n + 1;
    out.v.assign((m + 1) * out.stride, kScoreNegInf);
    out.ptr.assign((m + 1) * out.stride, Pointer{kOrigin, 0, 0});
    std::vector<Score> h((m + 1) * out.stride, kScoreNegInf);
    std::vector<Score> g((m + 1) * out.stride, kScoreNegInf);

    out.v[0] = 0;
    for (std::size_t j = 1; j <= n; ++j) {
        out.v[j] = -scoring.gap_cost(j);
        h[j] = out.v[j];
        out.ptr[j] = Pointer{kHGap, j == 1, 0};
    }
    for (std::size_t i = 1; i <= m; ++i) {
        const std::size_t idx = i * out.stride;
        out.v[idx] = -scoring.gap_cost(i);
        g[idx] = out.v[idx];
        out.ptr[idx] = Pointer{kVGap, 0, i == 1};
    }

    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const std::size_t idx = i * out.stride + j;
            const std::size_t up = idx - out.stride;
            const std::size_t left = idx - 1;
            const std::size_t diag = up - 1;

            Pointer p{kOrigin, 0, 0};
            const Score h_open = out.v[left] - scoring.gap_open;
            const Score h_ext = h[left] - scoring.gap_extend;
            h[idx] = std::max(h_open, h_ext);
            p.hopen = h_open >= h_ext;

            const Score g_open = out.v[up] - scoring.gap_open;
            const Score g_ext = g[up] - scoring.gap_extend;
            g[idx] = std::max(g_open, g_ext);
            p.vopen = g_open >= g_ext;

            const Score diag_score =
                out.v[diag] +
                scoring.substitution(target[j - 1], query[i - 1]);

            Score val = diag_score;
            p.vdir = kDiag;
            if (h[idx] > val) {
                val = h[idx];
                p.vdir = kHGap;
            }
            if (g[idx] > val) {
                val = g[idx];
                p.vdir = kVGap;
            }
            out.v[idx] = val;
            out.ptr[idx] = p;
        }
    }
    return out;
}

/** Trace back from (i, j) to the origin using the pointer matrix. */
Cigar
traceback(const NwMatrices& mats, std::span<const std::uint8_t> target,
          std::span<const std::uint8_t> query, std::size_t i, std::size_t j)
{
    Cigar rev;
    enum class State { V, H, G } state = State::V;
    while (i != 0 || j != 0) {
        const std::size_t idx = i * mats.stride + j;
        const Pointer p = mats.ptr[idx];
        if (state == State::V) {
            if (p.vdir == kDiag) {
                const bool eq = target[j - 1] == query[i - 1] &&
                                seq::is_concrete(target[j - 1]);
                rev.push(eq ? EditOp::Match : EditOp::Mismatch);
                --i;
                --j;
            } else if (p.vdir == kHGap) {
                state = State::H;
            } else if (p.vdir == kVGap) {
                state = State::G;
            } else {
                panic("needleman_wunsch: origin pointer off-origin");
            }
        } else if (state == State::H) {
            rev.push(EditOp::Delete);
            --j;
            if (p.hopen)
                state = State::V;
        } else {
            rev.push(EditOp::Insert);
            --i;
            if (p.vopen)
                state = State::V;
        }
    }
    rev.reverse();
    return rev;
}

}  // namespace

GlobalAlignment
needleman_wunsch(std::span<const std::uint8_t> target,
                 std::span<const std::uint8_t> query,
                 const ScoringParams& scoring)
{
    NwMatrices mats = run_nw(target, query, scoring);
    GlobalAlignment out;
    out.score = mats.v[query.size() * mats.stride + target.size()];
    out.cigar = traceback(mats, target, query, query.size(), target.size());
    return out;
}

TileResult
nw_extend_reference(std::span<const std::uint8_t> target,
                    std::span<const std::uint8_t> query,
                    const ScoringParams& scoring)
{
    NwMatrices mats = run_nw(target, query, scoring);
    const std::size_t n = target.size();
    const std::size_t m = query.size();

    // Maximum cell anywhere in the matrix (origin included: score 0).
    Score best = 0;
    std::size_t best_i = 0;
    std::size_t best_j = 0;
    for (std::size_t i = 0; i <= m; ++i) {
        for (std::size_t j = 0; j <= n; ++j) {
            const Score val = mats.v[i * mats.stride + j];
            if (val > best) {
                best = val;
                best_i = i;
                best_j = j;
            }
        }
    }

    TileResult out;
    out.max_score = best;
    out.target_max = best_j;
    out.query_max = best_i;
    out.cigar = traceback(mats, target, query, best_i, best_j);
    out.cells_computed = static_cast<std::uint64_t>(n) * m;
    out.traceback_bytes = ((n + 1) * (m + 1) + 1) / 2;
    return out;
}

}  // namespace darwin::align
