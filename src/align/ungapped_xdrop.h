/**
 * @file
 * Ungapped X-drop extension — the LASTZ filtering stage our baseline
 * aligner uses (paper §III-C, "Unlike Darwin-WGA, LASTZ filters using
 * X-drop ungapped extension").
 *
 * From a seed hit the filter extends along the diagonal in both
 * directions, accumulating substitution scores only (no indels allowed),
 * and stops a direction when the running score drops more than `xdrop`
 * below its maximum. A hit passes the filter iff the combined best
 * segment score reaches the threshold. This is the stage whose rigidity
 * loses alignments whose ungapped blocks are short (paper Fig. 2) — the
 * motivation for gapped filtering.
 */
#ifndef DARWIN_ALIGN_UNGAPPED_XDROP_H
#define DARWIN_ALIGN_UNGAPPED_XDROP_H

#include <cstdint>
#include <span>

#include "align/scoring.h"

namespace darwin::align {

/** Best ungapped segment around a seed hit. */
struct UngappedResult {
    Score score = 0;
    /** Segment [target_lo, target_hi) on the target. */
    std::size_t target_lo = 0;
    std::size_t target_hi = 0;
    /** Segment start on the query (same length as the target segment). */
    std::size_t query_lo = 0;
    /** Midpoint of the segment: the anchor handed to extension. */
    std::size_t anchor_t = 0;
    std::size_t anchor_q = 0;
    std::uint64_t cells_computed = 0;

    /// Kernels are bit-identical, so whole-result comparison is meaningful.
    bool operator==(const UngappedResult&) const = default;
};

/**
 * Ungapped X-drop extension of a seed hit.
 *
 * Façade over the kernel dispatch registry
 * (align/kernels/kernel_registry.h); all registered implementations are
 * bit-identical, including `cells_computed` (the exact early-break
 * semantics of the scalar kernel are preserved).
 *
 * @param target  Full target span.
 * @param query   Full query span.
 * @param seed_t  Seed start position on the target.
 * @param seed_q  Seed start position on the query.
 * @param seed_len Seed span length (scored as part of the segment).
 * @param scoring Substitution scores.
 * @param xdrop   Drop-off bound.
 */
UngappedResult ungapped_xdrop_extend(std::span<const std::uint8_t> target,
                                     std::span<const std::uint8_t> query,
                                     std::size_t seed_t, std::size_t seed_q,
                                     std::size_t seed_len,
                                     const ScoringParams& scoring,
                                     Score xdrop);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_UNGAPPED_XDROP_H
