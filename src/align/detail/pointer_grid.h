/**
 * @file
 * Internal: packed per-row traceback-pointer storage and the shared
 * traceback walker used by the X-drop reference engine and the GACT-X
 * kernels.
 *
 * Rows store only their computed column window, two 4-bit pointers per
 * byte in row-major order (low nibble = even in-row index). The stored
 * footprint therefore *equals* the accounted `traceback_bytes`
 * ((len + 1) / 2 per row) and the hardware BRAM budget — the seed
 * engine's one-byte-per-cell `Pointer` records and the per-stripe
 * transpose are gone; engines either append a pre-packed row directly
 * (the wavefront kernels write nibbles in row-major order as the
 * anti-diagonal sweeps) or hand over one code byte per cell and let
 * `add_row_codes` pack.
 */
#ifndef DARWIN_ALIGN_DETAIL_POINTER_GRID_H
#define DARWIN_ALIGN_DETAIL_POINTER_GRID_H

#include <cstdint>
#include <span>
#include <vector>

#include "align/cigar.h"
#include "util/logging.h"

namespace darwin::align::detail {

/** V-direction values of the 4-bit hardware pointer. */
enum VDir : std::uint8_t {
    kOrigin = 0,  ///< boundary/pruned; only legal at the tile origin
    kDiag = 1,
    kHGap = 2,  ///< gap consuming target (Delete)
    kVGap = 3,  ///< gap consuming query (Insert)
};

/** One direction pointer, unpacked for the traceback walker. */
struct Pointer {
    std::uint8_t vdir : 2;
    std::uint8_t hopen : 1;
    std::uint8_t vopen : 1;
};

/** 4-bit wire form: vdir in bits 0-1, hopen bit 2, vopen bit 3. */
inline std::uint8_t
pack_pointer(std::uint8_t vdir, bool hopen, bool vopen)
{
    return static_cast<std::uint8_t>(
        vdir | (hopen ? 0x4u : 0u) | (vopen ? 0x8u : 0u));
}

inline Pointer
unpack_pointer(std::uint8_t code)
{
    Pointer p;
    p.vdir = code & 0x3u;
    p.hopen = (code >> 2) & 0x1u;
    p.vopen = (code >> 3) & 0x1u;
    return p;
}

/**
 * Rows 1..m of packed pointers (row 0 and column 0 are implicit
 * boundaries). One contiguous byte pool holds every row back to back,
 * each row byte-aligned, so `packed_bytes()` is exact.
 */
class PointerGrid {
  public:
    /**
     * Append the next row (rows arrive in increasing i): `len` cells
     * starting at column `start`, already packed two-per-byte in
     * `packed[0 .. (len + 1) / 2)`. A trailing padding nibble is
     * ignored (never read back).
     */
    void
    add_packed_row(std::size_t start, const std::uint8_t* packed,
                   std::size_t len)
    {
        rows_.push_back(RowRef{start, bytes_.size(), len});
        bytes_.insert(bytes_.end(), packed, packed + (len + 1) / 2);
    }

    /** Append the next row from one pointer code per byte, packing. */
    void
    add_row_codes(std::size_t start, const std::uint8_t* codes,
                  std::size_t len)
    {
        rows_.push_back(RowRef{start, bytes_.size(), len});
        for (std::size_t c = 0; c + 1 < len; c += 2)
            bytes_.push_back(static_cast<std::uint8_t>(
                codes[c] | (codes[c + 1] << 4)));
        if (len % 2 != 0)
            bytes_.push_back(codes[len - 1]);
    }

    std::size_t num_rows() const { return rows_.size(); }

    /** True when DP cell (i, j) is inside row i's stored window. */
    bool
    contains(std::size_t i, std::size_t j) const
    {
        if (i < 1 || i > rows_.size())
            return false;
        const RowRef& row = rows_[i - 1];
        return j >= row.start && j - row.start < row.len;
    }

    /** Pointer at DP cell (i, j), i >= 1, j >= 1. */
    Pointer
    at(std::size_t i, std::size_t j) const
    {
        require(i >= 1 && i <= rows_.size(),
                "PointerGrid: traceback row out of range");
        const RowRef& row = rows_[i - 1];
        require(j >= row.start && j - row.start < row.len,
                "PointerGrid: traceback outside stored window");
        const std::size_t nib = j - row.start;
        const std::uint8_t byte = bytes_[row.offset + nib / 2];
        return unpack_pointer((nib % 2 != 0) ? (byte >> 4)
                                             : (byte & 0x0Fu));
    }

    /** Packed (4-bit) byte footprint across all stored rows. */
    std::uint64_t packed_bytes() const { return bytes_.size(); }

  private:
    struct RowRef {
        std::size_t start;   ///< first stored column index (j)
        std::size_t offset;  ///< byte offset of the row in the pool
        std::size_t len;     ///< stored cells
    };

    std::vector<RowRef> rows_;
    std::vector<std::uint8_t> bytes_;
};

/**
 * Walk pointers from cell (i, j) back to the origin, emitting the edit
 * script in forward order. Boundary rules: on reaching row 0 the
 * remaining columns are Deletes; on reaching column 0 the remaining rows
 * are Inserts (both correspond to the gap-initialized DP borders).
 */
inline Cigar
trace_from(const PointerGrid& grid, std::span<const std::uint8_t> target,
           std::span<const std::uint8_t> query, std::size_t i,
           std::size_t j)
{
    Cigar rev;
    enum class State { V, H, G } state = State::V;
    while (i != 0 || j != 0) {
        if (i == 0) {
            rev.push(EditOp::Delete, static_cast<std::uint32_t>(j));
            break;
        }
        if (j == 0) {
            rev.push(EditOp::Insert, static_cast<std::uint32_t>(i));
            break;
        }
        const Pointer p = grid.at(i, j);
        if (state == State::V) {
            switch (p.vdir) {
              case kDiag: {
                const bool eq = target[j - 1] == query[i - 1] &&
                                seq::is_concrete(target[j - 1]);
                rev.push(eq ? EditOp::Match : EditOp::Mismatch);
                --i;
                --j;
                break;
              }
              case kHGap:
                state = State::H;
                break;
              case kVGap:
                state = State::G;
                break;
              default:
                panic("trace_from: pointer into pruned cell");
            }
        } else if (state == State::H) {
            rev.push(EditOp::Delete);
            --j;
            if (p.hopen)
                state = State::V;
        } else {
            rev.push(EditOp::Insert);
            --i;
            if (p.vopen)
                state = State::V;
        }
    }
    rev.reverse();
    return rev;
}

}  // namespace darwin::align::detail

#endif  // DARWIN_ALIGN_DETAIL_POINTER_GRID_H
