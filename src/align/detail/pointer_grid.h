/**
 * @file
 * Internal: sparse per-row traceback-pointer storage and the shared
 * traceback walker used by the X-drop reference engine and GACT-X.
 *
 * Rows store only their computed column window (4-bit pointers, one byte
 * per cell in memory for simplicity; the *accounted* traceback footprint
 * uses the packed 4-bit size, matching the hardware BRAM budget).
 */
#ifndef DARWIN_ALIGN_DETAIL_POINTER_GRID_H
#define DARWIN_ALIGN_DETAIL_POINTER_GRID_H

#include <cstdint>
#include <span>
#include <vector>

#include "align/cigar.h"
#include "util/logging.h"

namespace darwin::align::detail {

/** V-direction values of the 4-bit hardware pointer. */
enum VDir : std::uint8_t {
    kOrigin = 0,  ///< boundary/pruned; only legal at the tile origin
    kDiag = 1,
    kHGap = 2,  ///< gap consuming target (Delete)
    kVGap = 3,  ///< gap consuming query (Insert)
};

/** One packed direction pointer. */
struct Pointer {
    std::uint8_t vdir : 2;
    std::uint8_t hopen : 1;
    std::uint8_t vopen : 1;
};

/** Computed column window and pointers of one DP row. */
struct PointerRow {
    std::size_t start = 0;  ///< first stored column index (j)
    std::vector<Pointer> ptrs;

    bool
    contains(std::size_t j) const
    {
        return j >= start && j - start < ptrs.size();
    }

    Pointer
    at(std::size_t j) const
    {
        require(contains(j), "PointerRow: traceback outside stored window");
        return ptrs[j - start];
    }
};

/** Rows 1..m of pointers (row 0 and column 0 are implicit boundaries). */
class PointerGrid {
  public:
    void
    add_row(PointerRow row)
    {
        rows_.push_back(std::move(row));
    }

    std::size_t num_rows() const { return rows_.size(); }

    /** Pointer at DP cell (i, j), i >= 1, j >= 1. */
    Pointer
    at(std::size_t i, std::size_t j) const
    {
        require(i >= 1 && i <= rows_.size(),
                "PointerGrid: traceback row out of range");
        return rows_[i - 1].at(j);
    }

    /** Packed (4-bit) byte footprint across all stored rows. */
    std::uint64_t
    packed_bytes() const
    {
        std::uint64_t total = 0;
        for (const auto& row : rows_)
            total += (row.ptrs.size() + 1) / 2;
        return total;
    }

  private:
    std::vector<PointerRow> rows_;
};

/**
 * Walk pointers from cell (i, j) back to the origin, emitting the edit
 * script in forward order. Boundary rules: on reaching row 0 the
 * remaining columns are Deletes; on reaching column 0 the remaining rows
 * are Inserts (both correspond to the gap-initialized DP borders).
 */
inline Cigar
trace_from(const PointerGrid& grid, std::span<const std::uint8_t> target,
           std::span<const std::uint8_t> query, std::size_t i,
           std::size_t j)
{
    Cigar rev;
    enum class State { V, H, G } state = State::V;
    while (i != 0 || j != 0) {
        if (i == 0) {
            rev.push(EditOp::Delete, static_cast<std::uint32_t>(j));
            break;
        }
        if (j == 0) {
            rev.push(EditOp::Insert, static_cast<std::uint32_t>(i));
            break;
        }
        const Pointer p = grid.at(i, j);
        if (state == State::V) {
            switch (p.vdir) {
              case kDiag: {
                const bool eq = target[j - 1] == query[i - 1] &&
                                seq::is_concrete(target[j - 1]);
                rev.push(eq ? EditOp::Match : EditOp::Mismatch);
                --i;
                --j;
                break;
              }
              case kHGap:
                state = State::H;
                break;
              case kVGap:
                state = State::G;
                break;
              default:
                panic("trace_from: pointer into pruned cell");
            }
        } else if (state == State::H) {
            rev.push(EditOp::Delete);
            --j;
            if (p.hopen)
                state = State::V;
        } else {
            rev.push(EditOp::Insert);
            --i;
            if (p.vopen)
                state = State::V;
        }
    }
    rev.reverse();
    return rev;
}

}  // namespace darwin::align::detail

#endif  // DARWIN_ALIGN_DETAIL_POINTER_GRID_H
