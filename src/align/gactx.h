/**
 * @file
 * GACT-X — the paper's novel tile extension algorithm (§III-D, §IV).
 *
 * Like GACT, a tile is aligned from its origin with Needleman-Wunsch
 * affine-gap scoring and traced back from the maximum-scoring cell. Unlike
 * GACT, computation is bounded by an X-drop test: processing proceeds in
 * *stripes* of Npe rows (one row per systolic processing element); a
 * stripe starts at the first column whose score in the previous stripe's
 * last row exceeded (Vmax - Y), and a stripe ends at the first column
 * whose cells all fall below (Vmax - Y). Only the computed windows store
 * traceback pointers, so the same traceback memory affords far larger
 * tiles than GACT — the key to aligning through the long gaps of
 * cross-species WGA.
 *
 * This implementation is stripe-faithful: the hardware model
 * (hw/gactx_array.h) derives cycle counts directly from the
 * stripe_columns this engine reports, and the test suite checks it
 * against the row-granular reference (align/xdrop_reference.h) and the
 * full-matrix reference (align/needleman_wunsch.h).
 */
#ifndef DARWIN_ALIGN_GACTX_H
#define DARWIN_ALIGN_GACTX_H

#include "align/tile.h"

namespace darwin::align {

/** Configuration of the GACT-X tile engine (paper Table II defaults). */
struct GactXParams {
    ScoringParams scoring = ScoringParams::paper_defaults();

    /** Tile size Te. */
    std::size_t tile_size = 1920;

    /** Overlap O between successive tiles. */
    std::size_t overlap = 128;

    /** X-drop bound Y. */
    Score ydrop = 9430;

    /** Stripe height = processing elements per systolic array. */
    std::size_t num_pe = 32;

    /** Traceback pointer memory (bytes, 4 bits/cell). 1 MB default. */
    std::uint64_t traceback_bytes = 1ULL << 20;
};

/** The GACT-X tile aligner. */
class GactXTileAligner : public TileAligner {
  public:
    explicit GactXTileAligner(GactXParams params);

    TileResult align_tile(std::span<const std::uint8_t> target,
                          std::span<const std::uint8_t> query) const override;

    std::size_t tile_size() const override { return params_.tile_size; }
    std::size_t tile_overlap() const override { return params_.overlap; }

    const GactXParams& params() const { return params_; }

  private:
    GactXParams params_;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_GACTX_H
