#include "align/cigar.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::align {

char
edit_op_char(EditOp op)
{
    switch (op) {
      case EditOp::Match:    return '=';
      case EditOp::Mismatch: return 'X';
      case EditOp::Insert:   return 'I';
      case EditOp::Delete:   return 'D';
    }
    return '?';
}

void
Cigar::push(EditOp op, std::uint32_t length)
{
    if (length == 0)
        return;
    if (!runs_.empty() && runs_.back().op == op) {
        runs_.back().length += length;
    } else {
        runs_.push_back({op, length});
    }
}

void
Cigar::append(const Cigar& other)
{
    for (const auto& run : other.runs_)
        push(run.op, run.length);
}

void
Cigar::reverse()
{
    std::reverse(runs_.begin(), runs_.end());
}

std::uint64_t
Cigar::total_ops() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_)
        total += run.length;
    return total;
}

std::uint64_t
Cigar::target_consumed() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op != EditOp::Insert)
            total += run.length;
    }
    return total;
}

std::uint64_t
Cigar::query_consumed() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op != EditOp::Delete)
            total += run.length;
    }
    return total;
}

std::uint64_t
Cigar::matches() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op == EditOp::Match)
            total += run.length;
    }
    return total;
}

std::uint64_t
Cigar::mismatches() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op == EditOp::Mismatch)
            total += run.length;
    }
    return total;
}

std::uint64_t
Cigar::gap_runs() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op == EditOp::Insert || run.op == EditOp::Delete)
            ++total;
    }
    return total;
}

std::uint64_t
Cigar::gap_bases() const
{
    std::uint64_t total = 0;
    for (const auto& run : runs_) {
        if (run.op == EditOp::Insert || run.op == EditOp::Delete)
            total += run.length;
    }
    return total;
}

std::string
Cigar::to_string() const
{
    std::string out;
    for (const auto& run : runs_)
        out += strprintf("%u%c", run.length, edit_op_char(run.op));
    return out;
}

Score
Cigar::score(std::span<const std::uint8_t> target,
             std::span<const std::uint8_t> query,
             const ScoringParams& scoring) const
{
    Score total = 0;
    std::size_t ti = 0;
    std::size_t qi = 0;
    for (const auto& run : runs_) {
        switch (run.op) {
          case EditOp::Match:
          case EditOp::Mismatch:
            for (std::uint32_t k = 0; k < run.length; ++k) {
                require(ti < target.size() && qi < query.size(),
                        "Cigar::score: ops overrun sequences");
                total += scoring.substitution(target[ti++], query[qi++]);
            }
            break;
          case EditOp::Insert:
            require(qi + run.length <= query.size(),
                    "Cigar::score: insert overruns query");
            total -= scoring.gap_cost(run.length);
            qi += run.length;
            break;
          case EditOp::Delete:
            require(ti + run.length <= target.size(),
                    "Cigar::score: delete overruns target");
            total -= scoring.gap_cost(run.length);
            ti += run.length;
            break;
        }
    }
    return total;
}

bool
Cigar::consistent_with(std::span<const std::uint8_t> target,
                       std::span<const std::uint8_t> query) const
{
    std::size_t ti = 0;
    std::size_t qi = 0;
    for (const auto& run : runs_) {
        switch (run.op) {
          case EditOp::Match:
          case EditOp::Mismatch:
            if (ti + run.length > target.size() ||
                qi + run.length > query.size())
                return false;
            for (std::uint32_t k = 0; k < run.length; ++k) {
                const bool equal = target[ti + k] == query[qi + k] &&
                                   seq::is_concrete(target[ti + k]);
                if (equal != (run.op == EditOp::Match))
                    return false;
            }
            ti += run.length;
            qi += run.length;
            break;
          case EditOp::Insert:
            if (qi + run.length > query.size())
                return false;
            qi += run.length;
            break;
          case EditOp::Delete:
            if (ti + run.length > target.size())
                return false;
            ti += run.length;
            break;
        }
    }
    return true;
}

}  // namespace darwin::align
