#include "align/smith_waterman.h"

#include <vector>

#include "util/logging.h"

namespace darwin::align {

namespace {

enum VDir : std::uint8_t { kStop = 0, kDiag = 1, kHGap = 2, kVGap = 3 };

struct Pointer {
    std::uint8_t vdir : 2;   ///< provenance of V
    std::uint8_t hopen : 1;  ///< H-gap opened (vs extended) at this cell
    std::uint8_t vopen : 1;  ///< V-gap opened (vs extended) at this cell
};

}  // namespace

LocalAlignment
smith_waterman(std::span<const std::uint8_t> target,
               std::span<const std::uint8_t> query,
               const ScoringParams& scoring)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    const std::size_t stride = n + 1;

    // V/H/G matrices; H = gap consuming target (Delete), G = gap consuming
    // query (Insert). Indexed [i * stride + j] with i over query rows
    // (0..m) and j over target columns (0..n).
    std::vector<Score> v((m + 1) * stride, 0);
    std::vector<Score> h((m + 1) * stride, kScoreNegInf);
    std::vector<Score> g((m + 1) * stride, kScoreNegInf);
    std::vector<Pointer> ptr((m + 1) * stride, Pointer{kStop, 0, 0});

    Score best = 0;
    std::size_t best_i = 0;
    std::size_t best_j = 0;

    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const std::size_t idx = i * stride + j;
            const std::size_t up = (i - 1) * stride + j;
            const std::size_t left = idx - 1;
            const std::size_t diag = up - 1;

            Pointer p{kStop, 0, 0};

            // H-gap: consume target base j (move left -> right).
            const Score h_open = v[left] - scoring.gap_open;
            const Score h_ext = h[left] - scoring.gap_extend;
            h[idx] = std::max(h_open, h_ext);
            p.hopen = h_open >= h_ext;

            // V-gap: consume query base i (move top -> bottom).
            const Score g_open = v[up] - scoring.gap_open;
            const Score g_ext = g[up] - scoring.gap_extend;
            g[idx] = std::max(g_open, g_ext);
            p.vopen = g_open >= g_ext;

            const Score diag_score =
                v[diag] + scoring.substitution(target[j - 1], query[i - 1]);

            Score val = 0;
            p.vdir = kStop;
            if (diag_score > val) {
                val = diag_score;
                p.vdir = kDiag;
            }
            if (h[idx] > val) {
                val = h[idx];
                p.vdir = kHGap;
            }
            if (g[idx] > val) {
                val = g[idx];
                p.vdir = kVGap;
            }
            v[idx] = val;
            ptr[idx] = p;

            if (val > best) {
                best = val;
                best_i = i;
                best_j = j;
            }
        }
    }

    LocalAlignment out;
    out.score = best;
    if (best == 0)
        return out;

    // Traceback from the best cell until a kStop V-cell.
    std::size_t i = best_i;
    std::size_t j = best_j;
    Cigar rev;
    enum class State { V, H, G } state = State::V;
    while (true) {
        const std::size_t idx = i * stride + j;
        if (state == State::V) {
            const Pointer p = ptr[idx];
            if (p.vdir == kStop)
                break;
            if (p.vdir == kDiag) {
                const bool eq = target[j - 1] == query[i - 1] &&
                                seq::is_concrete(target[j - 1]);
                rev.push(eq ? EditOp::Match : EditOp::Mismatch);
                --i;
                --j;
            } else if (p.vdir == kHGap) {
                state = State::H;
            } else {
                state = State::G;
            }
        } else if (state == State::H) {
            const Pointer p = ptr[idx];
            rev.push(EditOp::Delete);
            --j;
            if (p.hopen)
                state = State::V;
        } else {
            const Pointer p = ptr[idx];
            rev.push(EditOp::Insert);
            --i;
            if (p.vopen)
                state = State::V;
        }
        require(i <= m && j <= n, "smith_waterman: traceback escaped");
    }

    rev.reverse();
    out.cigar = std::move(rev);
    out.target_start = j;
    out.target_end = best_j;
    out.query_start = i;
    out.query_end = best_i;
    return out;
}

Score
smith_waterman_score(std::span<const std::uint8_t> target,
                     std::span<const std::uint8_t> query,
                     const ScoringParams& scoring)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    std::vector<Score> v_prev(n + 1, 0);
    std::vector<Score> v_cur(n + 1, 0);
    std::vector<Score> h_cur(n + 1, kScoreNegInf);
    std::vector<Score> g_col(n + 1, kScoreNegInf);

    Score best = 0;
    for (std::size_t i = 1; i <= m; ++i) {
        h_cur[0] = kScoreNegInf;
        v_cur[0] = 0;
        for (std::size_t j = 1; j <= n; ++j) {
            h_cur[j] = std::max(v_cur[j - 1] - scoring.gap_open,
                                h_cur[j - 1] - scoring.gap_extend);
            g_col[j] = std::max(v_prev[j] - scoring.gap_open,
                                g_col[j] - scoring.gap_extend);
            const Score diag =
                v_prev[j - 1] +
                scoring.substitution(target[j - 1], query[i - 1]);
            Score val = std::max<Score>(0, diag);
            val = std::max(val, h_cur[j]);
            val = std::max(val, g_col[j]);
            v_cur[j] = val;
            best = std::max(best, val);
        }
        std::swap(v_prev, v_cur);
    }
    return best;
}

}  // namespace darwin::align
