/**
 * @file
 * The tile-aligner abstraction shared by the extension stage.
 *
 * Both GACT and GACT-X reduce arbitrarily-long extension to a sequence of
 * fixed-size *tiles*: align target[0..T) x query[0..T) from the tile
 * origin, track the maximum-scoring cell, and trace back from that cell to
 * the origin. The extension driver (align/extension.h) then stitches tile
 * paths. A TileAligner implements exactly that per-tile contract.
 */
#ifndef DARWIN_ALIGN_TILE_H
#define DARWIN_ALIGN_TILE_H

#include <cstdint>
#include <span>
#include <vector>

#include "align/cigar.h"
#include "align/scoring.h"

namespace darwin::align {

/** Result of aligning one tile from its origin. */
struct TileResult {
    /** Best cell score found (Needleman-Wunsch from origin; may be <= 0). */
    Score max_score = 0;

    /** Target / query bases consumed by the path to the best cell. */
    std::size_t target_max = 0;
    std::size_t query_max = 0;

    /** Edit script from the tile origin to the best cell. */
    Cigar cigar;

    /** DP cells evaluated (proxy for compute cost). */
    std::uint64_t cells_computed = 0;

    /** Traceback pointer storage used, in bytes (4 bits per cell). */
    std::uint64_t traceback_bytes = 0;

    /**
     * Columns computed per Npe-row stripe, in stripe order. Filled by the
     * GACT-X engine; the hardware model converts these directly to systolic
     * cycle counts.
     */
    std::vector<std::uint32_t> stripe_columns;
};

/** Interface implemented by GACT, GACT-X, and test references. */
class TileAligner {
  public:
    virtual ~TileAligner() = default;

    /**
     * Align one tile from its origin.
     * @param target Tile slice of the target (up to tile_size() bases).
     * @param query  Tile slice of the query.
     */
    virtual TileResult align_tile(
        std::span<const std::uint8_t> target,
        std::span<const std::uint8_t> query) const = 0;

    /** Tile edge length in bp the driver should feed. */
    virtual std::size_t tile_size() const = 0;

    /** Tile overlap in bp between successive tiles. */
    virtual std::size_t tile_overlap() const = 0;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_TILE_H
