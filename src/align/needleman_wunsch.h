/**
 * @file
 * Full Needleman-Wunsch references: global alignment, and the
 * "extension-from-origin" variant that defines the semantics GACT and
 * GACT-X approximate inside a tile (align from (0,0), take the maximum
 * cell anywhere in the matrix, trace back to the origin).
 */
#ifndef DARWIN_ALIGN_NEEDLEMAN_WUNSCH_H
#define DARWIN_ALIGN_NEEDLEMAN_WUNSCH_H

#include <span>

#include "align/scoring.h"
#include "align/tile.h"

namespace darwin::align {

/** Result of a global alignment. */
struct GlobalAlignment {
    Score score = 0;
    Cigar cigar;  ///< consumes the whole of both spans
};

/**
 * Optimal global alignment (both spans fully consumed), affine gaps,
 * O(n*m) memory. Reference/test use only.
 */
GlobalAlignment needleman_wunsch(std::span<const std::uint8_t> target,
                                 std::span<const std::uint8_t> query,
                                 const ScoringParams& scoring);

/**
 * Extension reference: Needleman-Wunsch from the origin with the full
 * matrix computed, returning the maximum cell anywhere and the path back
 * to the origin. This is exactly a GACT-X tile with an infinite X-drop
 * bound and unlimited traceback memory, so it upper-bounds every tile
 * heuristic's score.
 */
TileResult nw_extend_reference(std::span<const std::uint8_t> target,
                               std::span<const std::uint8_t> query,
                               const ScoringParams& scoring);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_NEEDLEMAN_WUNSCH_H
