#include "align/alignment.h"

#include "util/strings.h"

namespace darwin::align {

double
Alignment::identity() const
{
    const std::uint64_t aligned = cigar.matches() + cigar.mismatches();
    if (aligned == 0)
        return 0.0;
    return static_cast<double>(cigar.matches()) /
           static_cast<double>(aligned);
}

std::string
Alignment::summary() const
{
    return strprintf(
        "t[%llu,%llu) q[%llu,%llu)%s score=%d match=%llu id=%.1f%%",
        static_cast<unsigned long long>(target_start),
        static_cast<unsigned long long>(target_end),
        static_cast<unsigned long long>(query_start),
        static_cast<unsigned long long>(query_end),
        query_strand == Strand::Reverse ? " (rev)" : "",
        score,
        static_cast<unsigned long long>(matched_bases()),
        identity() * 100.0);
}

}  // namespace darwin::align
