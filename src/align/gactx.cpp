#include "align/gactx.h"

#include "align/kernels/kernel_registry.h"
#include "util/logging.h"

namespace darwin::align {

GactXTileAligner::GactXTileAligner(GactXParams params) : params_(params)
{
    require(params_.num_pe > 0, "GactXTileAligner: num_pe must be > 0");
    require(params_.tile_size > params_.overlap,
            "GactXTileAligner: tile must exceed the overlap");
    require(params_.ydrop > 0, "GactXTileAligner: ydrop must be positive");
}

TileResult
GactXTileAligner::align_tile(std::span<const std::uint8_t> target,
                             std::span<const std::uint8_t> query) const
{
    // Thin façade over the registry's active extension kernel (the
    // anti-diagonal wavefront engines of align/kernels/; see
    // gactx_kernels.h for the bit-identity contract that keeps the
    // hw/gactx_array cycle model valid under dispatch).
    return kernels::KernelRegistry::instance().active().gactx(
        target, query, params_);
}

}  // namespace darwin::align
