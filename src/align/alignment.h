/**
 * @file
 * Alignment records produced by the extension stage and consumed by the
 * chainer / MAF writer. Coordinates are 0-based half-open positions in the
 * *flattened* genome coordinate space (see seq::Genome) on the forward
 * strand of the target; `query_strand` records the query orientation.
 */
#ifndef DARWIN_ALIGN_ALIGNMENT_H
#define DARWIN_ALIGN_ALIGNMENT_H

#include <cstdint>
#include <string>

#include "align/cigar.h"
#include "align/scoring.h"

namespace darwin::align {

/** Strand of the query sequence in an alignment. */
enum class Strand : std::uint8_t { Forward, Reverse };

/** A scored local alignment between target and query. */
struct Alignment {
    std::uint64_t target_start = 0;
    std::uint64_t target_end = 0;  ///< exclusive
    std::uint64_t query_start = 0;
    std::uint64_t query_end = 0;   ///< exclusive
    Strand query_strand = Strand::Forward;
    Score score = 0;
    Cigar cigar;

    std::uint64_t
    target_span() const
    {
        return target_end - target_start;
    }

    std::uint64_t
    query_span() const
    {
        return query_end - query_start;
    }

    /** Exact-match bases (the paper's "matching base-pairs" metric). */
    std::uint64_t matched_bases() const { return cigar.matches(); }

    /** Fraction of aligned (non-gap) columns that match. */
    double identity() const;

    /** Anti-diagonal-ish ordering key used for deduplication. */
    std::int64_t
    diagonal() const
    {
        return static_cast<std::int64_t>(target_start) -
               static_cast<std::int64_t>(query_start);
    }

    bool
    empty() const
    {
        return cigar.empty();
    }

    std::string summary() const;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_ALIGNMENT_H
