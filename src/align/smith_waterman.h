/**
 * @file
 * Full (unbanded) Smith-Waterman local alignment with affine gaps.
 *
 * This is the O(n*m)-memory reference implementation: it is what every
 * heuristic in the library (banded SW, GACT, GACT-X) is validated against
 * in the test suite. It is not used on genome-scale inputs.
 */
#ifndef DARWIN_ALIGN_SMITH_WATERMAN_H
#define DARWIN_ALIGN_SMITH_WATERMAN_H

#include <span>

#include "align/alignment.h"
#include "align/scoring.h"

namespace darwin::align {

/** A local alignment within a pair of spans (span-relative coordinates). */
struct LocalAlignment {
    Score score = 0;
    std::size_t target_start = 0;
    std::size_t target_end = 0;
    std::size_t query_start = 0;
    std::size_t query_end = 0;
    Cigar cigar;
};

/**
 * Optimal local alignment of two spans (Gotoh affine-gap Smith-Waterman
 * with full traceback). Returns a zero-score empty alignment when no
 * positive-scoring pair exists.
 */
LocalAlignment smith_waterman(std::span<const std::uint8_t> target,
                              std::span<const std::uint8_t> query,
                              const ScoringParams& scoring);

/** Score-only variant (same DP, no traceback storage). */
Score smith_waterman_score(std::span<const std::uint8_t> target,
                           std::span<const std::uint8_t> query,
                           const ScoringParams& scoring);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_SMITH_WATERMAN_H
