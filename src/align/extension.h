/**
 * @file
 * Tiled extension driver (paper §III-D, Fig. 4c).
 *
 * From a filter anchor, the driver extends right (toward higher
 * coordinates) and left (toward lower coordinates, by aligning reversed
 * tile slices) using a TileAligner (GACT or GACT-X). Successive tiles
 * overlap by O bases: the part of a tile path inside the overlap region is
 * discarded and recomputed by the next tile, removing boundary artifacts.
 * Extension in a direction stops when a tile's Vmax is <= 0 or the tile
 * makes no forward progress.
 */
#ifndef DARWIN_ALIGN_EXTENSION_H
#define DARWIN_ALIGN_EXTENSION_H

#include <vector>

#include "align/alignment.h"
#include "align/tile.h"
#include "seq/base_view.h"

namespace darwin::align {

/** Aggregate work counters from one anchor extension. */
struct ExtensionStats {
    std::uint64_t tiles = 0;
    std::uint64_t cells = 0;
    std::uint64_t traceback_ops = 0;
    /** Count of stripes across all tiles (GACT-X only). */
    std::uint64_t stripes = 0;
    /** Sum of per-stripe column counts (GACT-X only). */
    std::uint64_t stripe_columns = 0;
    /** Directional extensions stopped by the X-drop rule (a tile whose
     *  Vmax <= 0), as opposed to reaching a sequence end or stalling. */
    std::uint64_t xdrop_terminations = 0;

    void
    absorb(const TileResult& tile)
    {
        ++tiles;
        cells += tile.cells_computed;
        traceback_ops += tile.cigar.total_ops();
        stripes += tile.stripe_columns.size();
        for (std::uint32_t c : tile.stripe_columns)
            stripe_columns += c;
    }

    void
    merge(const ExtensionStats& other)
    {
        tiles += other.tiles;
        cells += other.cells;
        traceback_ops += other.traceback_ops;
        stripes += other.stripes;
        stripe_columns += other.stripe_columns;
        xdrop_terminations += other.xdrop_terminations;
    }
};

/**
 * Extend an anchor in both directions and stitch the result.
 *
 * @param target   Full target span (anchor coordinates are into this).
 * @param query    Full query span.
 * @param anchor_t Anchor position in the target (tile origin for the
 *                 right extension; left extension ends here).
 * @param anchor_q Anchor position in the query.
 * @param aligner  Tile engine (GACT-X in the Darwin-WGA pipeline).
 * @param scoring  Used to re-score the stitched alignment.
 * @param stats    Optional work counters (accumulated, not reset).
 * @return The stitched alignment with span-relative coordinates; empty
 *         (cigar-less, score 0) when no positive extension exists.
 */
Alignment extend_anchor(std::span<const std::uint8_t> target,
                        std::span<const std::uint8_t> query,
                        std::size_t anchor_t, std::size_t anchor_q,
                        const TileAligner& aligner,
                        const ScoringParams& scoring,
                        ExtensionStats* stats = nullptr);

/** BaseView variant: bit-identical results over byte or 2-bit packed
 *  storage; packed backing decodes one tile window at a time. */
Alignment extend_anchor(seq::BaseView target, seq::BaseView query,
                        std::size_t anchor_t, std::size_t anchor_q,
                        const TileAligner& aligner,
                        const ScoringParams& scoring,
                        ExtensionStats* stats = nullptr);

/**
 * Resumable single-anchor extension — extend_anchor with the tile
 * alignment inverted out, so a batching layer can co-schedule the
 * *current* tile of many live anchors into one backend flush
 * (align/batch.h). Tiles within one anchor are inherently sequential
 * (each tile's origin is the previous tile's clipped endpoint), so
 * cross-anchor co-scheduling is the only batching axis.
 *
 * Protocol: `next_tile` stages the anchor's next tile (right extension
 * first, then left over reversed slices — the same order, tile
 * geometry, `extend.tile` probe polls and termination rules as
 * extend_anchor); the caller aligns the staged spans with any backend
 * and hands the result to `consume`. When `done`, `finish` stitches
 * exactly what extend_anchor would have returned. Driving this class
 * with a serial `align_tile` loop IS extend_anchor — that is how
 * extend_anchor is implemented.
 */
class AnchorExtender {
  public:
    /** Anchor must lie inside the views; tile_size > tile_overlap.
     *  The backing storage must stay alive for the extender's
     *  lifetime. Packed-backed views decode per tile into the staging
     *  buffers, so the extender's residency stays O(tile_size). */
    AnchorExtender(seq::BaseView target, seq::BaseView query,
                   std::size_t anchor_t, std::size_t anchor_q,
                   std::size_t tile_size, std::size_t tile_overlap);

    AnchorExtender(std::span<const std::uint8_t> target,
                   std::span<const std::uint8_t> query,
                   std::size_t anchor_t, std::size_t anchor_q,
                   std::size_t tile_size, std::size_t tile_overlap)
        : AnchorExtender(seq::BaseView(target), seq::BaseView(query),
                         anchor_t, anchor_q, tile_size, tile_overlap)
    {
    }

    /**
     * Stage the next tile. Returns false when the anchor is finished.
     * The output spans alias internal buffers valid until the next
     * next_tile call on this extender; exactly one consume() must
     * happen between staging calls that return true.
     */
    bool next_tile(std::span<const std::uint8_t>* target_tile,
                   std::span<const std::uint8_t>* query_tile);

    /** Apply the staged tile's result: absorb stats, clip at the
     *  overlap boundary, advance or terminate the direction. */
    void consume(const TileResult& tile);

    bool done() const { return phase_ == Phase::Done; }

    /** Stitch the final alignment (valid once done). */
    Alignment finish(const ScoringParams& scoring) const;

    /** Work counters absorbed so far (complete once done). */
    const ExtensionStats& stats() const { return stats_; }

  private:
    enum class Phase { Right, Left, Done };
    struct DirectionResult {
        Cigar cigar;  ///< in the orientation of the fetched slices
        std::size_t target_consumed = 0;
        std::size_t query_consumed = 0;
    };

    /** Commit the current direction and move to the next phase. */
    void end_direction();

    seq::BaseView target_;
    seq::BaseView query_;
    std::size_t anchor_t_ = 0;
    std::size_t anchor_q_ = 0;
    std::size_t tile_size_ = 0;
    std::size_t boundary_ = 0;  ///< tile_size - overlap (clip point)
    Phase phase_ = Phase::Right;
    bool staged_ = false;
    std::size_t pos_t_ = 0;
    std::size_t pos_q_ = 0;
    std::size_t remaining_t_ = 0;
    std::size_t remaining_q_ = 0;
    Cigar cur_cigar_;
    DirectionResult right_;
    DirectionResult left_;
    std::vector<std::uint8_t> target_buf_;
    std::vector<std::uint8_t> query_buf_;
    ExtensionStats stats_;
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_EXTENSION_H
