/**
 * @file
 * Tiled extension driver (paper §III-D, Fig. 4c).
 *
 * From a filter anchor, the driver extends right (toward higher
 * coordinates) and left (toward lower coordinates, by aligning reversed
 * tile slices) using a TileAligner (GACT or GACT-X). Successive tiles
 * overlap by O bases: the part of a tile path inside the overlap region is
 * discarded and recomputed by the next tile, removing boundary artifacts.
 * Extension in a direction stops when a tile's Vmax is <= 0 or the tile
 * makes no forward progress.
 */
#ifndef DARWIN_ALIGN_EXTENSION_H
#define DARWIN_ALIGN_EXTENSION_H

#include "align/alignment.h"
#include "align/tile.h"

namespace darwin::align {

/** Aggregate work counters from one anchor extension. */
struct ExtensionStats {
    std::uint64_t tiles = 0;
    std::uint64_t cells = 0;
    std::uint64_t traceback_ops = 0;
    /** Count of stripes across all tiles (GACT-X only). */
    std::uint64_t stripes = 0;
    /** Sum of per-stripe column counts (GACT-X only). */
    std::uint64_t stripe_columns = 0;
    /** Directional extensions stopped by the X-drop rule (a tile whose
     *  Vmax <= 0), as opposed to reaching a sequence end or stalling. */
    std::uint64_t xdrop_terminations = 0;

    void
    absorb(const TileResult& tile)
    {
        ++tiles;
        cells += tile.cells_computed;
        traceback_ops += tile.cigar.total_ops();
        stripes += tile.stripe_columns.size();
        for (std::uint32_t c : tile.stripe_columns)
            stripe_columns += c;
    }

    void
    merge(const ExtensionStats& other)
    {
        tiles += other.tiles;
        cells += other.cells;
        traceback_ops += other.traceback_ops;
        stripes += other.stripes;
        stripe_columns += other.stripe_columns;
        xdrop_terminations += other.xdrop_terminations;
    }
};

/**
 * Extend an anchor in both directions and stitch the result.
 *
 * @param target   Full target span (anchor coordinates are into this).
 * @param query    Full query span.
 * @param anchor_t Anchor position in the target (tile origin for the
 *                 right extension; left extension ends here).
 * @param anchor_q Anchor position in the query.
 * @param aligner  Tile engine (GACT-X in the Darwin-WGA pipeline).
 * @param scoring  Used to re-score the stitched alignment.
 * @param stats    Optional work counters (accumulated, not reset).
 * @return The stitched alignment with span-relative coordinates; empty
 *         (cigar-less, score 0) when no positive extension exists.
 */
Alignment extend_anchor(std::span<const std::uint8_t> target,
                        std::span<const std::uint8_t> query,
                        std::size_t anchor_t, std::size_t anchor_q,
                        const TileAligner& aligner,
                        const ScoringParams& scoring,
                        ExtensionStats* stats = nullptr);

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_EXTENSION_H
