#include "align/banded_sw.h"

#include <algorithm>
#include <vector>

namespace darwin::align {

BswResult
banded_smith_waterman(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    // Band-relative indexing: for row i, column j maps to
    // k = j - (i - B) in [0, 2B]. Row i-1's value for column j lives at
    // k+1, and for column j-1 at k.
    const std::size_t width = 2 * band + 1;
    std::vector<Score> v_prev(width + 1, 0);
    std::vector<Score> g_prev(width + 1, kScoreNegInf);
    std::vector<Score> v_cur(width + 1, 0);
    std::vector<Score> g_cur(width + 1, kScoreNegInf);

    // Row 0 of a local alignment is all zeros; out-of-band cells are -inf.
    // v_prev[k] corresponds to V(0, j) where j = k - B (for i = 1 the
    // mapping is k = j - (1 - B) - 1 ... handled uniformly below by
    // rebuilding row 0 in band coordinates of row 1.
    //
    // Simpler: iterate rows and maintain v_prev in the coordinates of the
    // *previous* row. For row 1, the previous row is row 0 whose V is 0
    // for every in-range column and -inf outside [0, n].
    const auto band_lo = [&](std::size_t i) -> std::size_t {
        return i > band ? i - band : 1;
    };
    const auto band_hi = [&](std::size_t i) -> std::size_t {
        return std::min(n, i + band);
    };

    // Initialize v_prev for "row 0": k = j - (0 - B) ... we store row 0 in
    // the coordinate frame it will be *read* from by row 1: reads use
    // prev[k] = V(0, j-1) with k = j - (1 - B). So prev[k] holds
    // V(0, k + 1 - B - 1 + ...) — rather than juggle the algebra, store
    // row 0 as: prev[k] = V(0, j0 + k) where j0 = 0 - band ... Row i has
    // frame base f(i) = i - band (column of k = 0, as a signed value).
    // Reads: V(i-1, j) = prev[j - f(i-1)] = prev[k + 1];
    //        V(i-1, j-1) = prev[k]; V(i, j-1) = cur[k - 1].
    // Row 0 frame base is f(0) = -band, so V(0, j) sits at j + band.
    for (std::size_t k = 0; k <= width; ++k) {
        // j = k - band (signed); valid when 0 <= j <= n.
        const std::int64_t j = static_cast<std::int64_t>(k) -
                               static_cast<std::int64_t>(band);
        v_prev[k] = (j >= 0 && j <= static_cast<std::int64_t>(n))
                        ? 0 : kScoreNegInf;
        g_prev[k] = kScoreNegInf;
    }

    for (std::size_t i = 1; i <= m; ++i) {
        const std::int64_t frame =
            static_cast<std::int64_t>(i) - static_cast<std::int64_t>(band);
        const std::size_t j_lo = band_lo(i);
        const std::size_t j_hi = band_hi(i);
        std::fill(v_cur.begin(), v_cur.end(), kScoreNegInf);
        std::fill(g_cur.begin(), g_cur.end(), kScoreNegInf);
        if (j_lo > j_hi) {
            std::swap(v_prev, v_cur);
            std::swap(g_prev, g_cur);
            continue;
        }
        Score h = kScoreNegInf;  // running H-gap within the row
        // Left edge of the band: V(i, j_lo - 1) is out of band unless
        // j_lo - 1 == 0, where a local alignment may start (score 0).
        Score v_left = (j_lo == 1) ? 0 : kScoreNegInf;
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
            const std::size_t k =
                static_cast<std::size_t>(static_cast<std::int64_t>(j) -
                                         frame);
            const Score diag_prev = (k <= width) ? v_prev[k] : kScoreNegInf;
            const Score up_prev =
                (k + 1 <= width) ? v_prev[k + 1] : kScoreNegInf;
            const Score g_up =
                (k + 1 <= width) ? g_prev[k + 1] : kScoreNegInf;

            h = std::max(v_left - scoring.gap_open,
                         h - scoring.gap_extend);
            const Score g = std::max(up_prev - scoring.gap_open,
                                     g_up - scoring.gap_extend);
            const Score diag =
                diag_prev +
                scoring.substitution(target[j - 1], query[i - 1]);

            Score val = std::max<Score>(0, diag);
            val = std::max(val, h);
            val = std::max(val, g);

            v_cur[k] = val;
            g_cur[k] = g;
            v_left = val;
            ++out.cells_computed;

            if (val > out.max_score) {
                out.max_score = val;
                out.target_max = j;
                out.query_max = i;
            }
        }
        std::swap(v_prev, v_cur);
        std::swap(g_prev, g_cur);
    }
    return out;
}

}  // namespace darwin::align
