#include "align/banded_sw.h"

#include "align/kernels/kernel_registry.h"
#include "fault/cancel.h"

namespace darwin::align {

BswResult
banded_smith_waterman(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const ScoringParams& scoring, std::size_t band)
{
    // Budget probe per tile: a filter tile is bounded work (tile bp x
    // band width), so per-tile polling keeps cancellation latency small
    // without touching the kernels' inner loops.
    fault::poll("filter.tile");
    // Thin façade: dispatch to the active registry kernel. Every kernel
    // is bit-identical (tests/kernel_diff_test.cpp), so callers never
    // observe which implementation ran.
    auto result = kernels::KernelRegistry::instance().active().bsw(
        target, query, scoring, band);
    fault::charge_cells(result.cells_computed);
    return result;
}

}  // namespace darwin::align
