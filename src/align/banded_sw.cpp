#include "align/banded_sw.h"

#include "align/kernels/kernel_registry.h"

namespace darwin::align {

BswResult
banded_smith_waterman(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      const ScoringParams& scoring, std::size_t band)
{
    // Thin façade: dispatch to the active registry kernel. Every kernel
    // is bit-identical (tests/kernel_diff_test.cpp), so callers never
    // observe which implementation ran.
    return kernels::KernelRegistry::instance().active().bsw(
        target, query, scoring, band);
}

}  // namespace darwin::align
