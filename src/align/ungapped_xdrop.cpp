#include "align/ungapped_xdrop.h"

#include "align/kernels/kernel_registry.h"
#include "fault/cancel.h"

namespace darwin::align {

UngappedResult
ungapped_xdrop_extend(std::span<const std::uint8_t> target,
                      std::span<const std::uint8_t> query,
                      std::size_t seed_t, std::size_t seed_q,
                      std::size_t seed_len, const ScoringParams& scoring,
                      Score xdrop)
{
    // Budget probe per extension: X-drop bounds each call, so per-call
    // polling is fine-grained enough for cancellation.
    fault::poll("filter.ungapped");
    // Thin façade: dispatch to the active registry kernel (bit-identical
    // across implementations, see tests/kernel_diff_test.cpp).
    auto result = kernels::KernelRegistry::instance().active().ungapped(
        target, query, seed_t, seed_q, seed_len, scoring, xdrop);
    fault::charge_cells(result.cells_computed);
    return result;
}

}  // namespace darwin::align
