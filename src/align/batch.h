/**
 * @file
 * Batched many-tile execution — the AlignBackend interface.
 *
 * The paper's co-processor keeps many independent tiles in flight at
 * once; on the software side that shape is a *batch backend*: callers
 * stage independent tiles into a structure-of-arrays `TileBatch` and
 * hand the whole batch to the active `AlignBackend`, which returns one
 * result per tile. Staging (wga/filter_stage, wga/extend_stage, the
 * batch scheduler) accumulates tiles into bounded batches and flushes
 * on size or deadline; the backend decides how a flush executes.
 *
 * Backends are listed in the KernelRegistry backend table (stable ids,
 * `DARWIN_BACKEND` / `--backend` override, `auto|serial|cpu-scalar|
 * cpu-simd|cycle-model`):
 *
 *  - `serial` (0): one-at-a-time dispatch through the single-tile
 *    façades (`banded_smith_waterman`, `GactXTileAligner::align_tile`).
 *    The stages recognize this id and keep their legacy per-tile code
 *    path — it is the differential baseline every other backend must
 *    match bit-for-bit.
 *  - `cpu-scalar` (1): batched staging, each tile through the scalar
 *    wavefront kernels regardless of the active kernel selection. The
 *    deterministic batched reference.
 *  - `cpu-simd` (2): batched staging through the registry's active
 *    (vectorized) kernel, flushes executed across a ThreadPool when
 *    one is provided, and an optional score-only first pass that skips
 *    traceback for tiles that won't survive x-drop (see
 *    `BatchOptions::probe_score_only`). The default (`auto`).
 *  - `cycle-model` (3): same results as cpu-simd plus per-flush device
 *    cycle estimates from the hw/ array models, so device projections
 *    see real batching effects (implemented in src/hw/backend_cycle.cpp
 *    to keep align/ free of hw/ includes).
 *
 * Contract: every backend returns per-tile results bit-identical to
 * serial dispatch — every TileResult field including the CIGAR,
 * `cells_computed`, `traceback_bytes` and `stripe_columns` — for any
 * batch size and order (enforced by tests/backend_batch_test.cpp).
 */
#ifndef DARWIN_ALIGN_BATCH_H
#define DARWIN_ALIGN_BATCH_H

#include <cstdint>
#include <span>
#include <vector>

#include "align/banded_sw.h"
#include "align/gactx.h"

namespace darwin {
class ThreadPool;
}

namespace darwin::align {

/**
 * A batch of independent tiles, structure-of-arrays: parallel vectors
 * of (target, query) views. The batch does not own sequence bytes —
 * the caller keeps the underlying buffers alive across the flush.
 */
class TileBatch {
  public:
    void
    push(std::span<const std::uint8_t> target,
         std::span<const std::uint8_t> query)
    {
        target_ptr_.push_back(target.data());
        target_len_.push_back(target.size());
        query_ptr_.push_back(query.data());
        query_len_.push_back(query.size());
    }

    std::size_t size() const { return target_len_.size(); }
    bool empty() const { return target_len_.empty(); }

    void
    clear()
    {
        target_ptr_.clear();
        target_len_.clear();
        query_ptr_.clear();
        query_len_.clear();
    }

    std::span<const std::uint8_t>
    target(std::size_t i) const
    {
        return {target_ptr_[i], target_len_[i]};
    }

    std::span<const std::uint8_t>
    query(std::size_t i) const
    {
        return {query_ptr_[i], query_len_[i]};
    }

  private:
    std::vector<const std::uint8_t*> target_ptr_;
    std::vector<std::size_t> target_len_;
    std::vector<const std::uint8_t*> query_ptr_;
    std::vector<std::size_t> query_len_;
};

/** Per-flush execution knobs, chosen by the staging layer. */
struct BatchOptions {
    /** Execute the flush's tiles across this pool (nullptr: in-thread).
     *  Tiles are independent, so results are order-deterministic either
     *  way; injected faults and budget polls fire on whichever thread
     *  runs the tile, exactly as the serial wave path behaves. */
    ThreadPool* pool = nullptr;

    /** GACT-X only: run a score-only probe pass first and skip the
     *  traceback machinery for tiles whose max_score is 0 (an x-drop
     *  dead tile's full result — empty CIGAR, origin maximum — is
     *  completely determined by the probe, so this is exact; see
     *  gactx_wavefront_scalar_score_only). Probed-dead tiles count
     *  into BatchExecStats::score_only_hits. */
    bool probe_score_only = false;
};

/** Work counters for batched execution. The staging layer fills the
 *  flush-shape fields; backends fill score_only_hits and device_*. */
struct BatchExecStats {
    std::uint64_t flushes = 0;
    std::uint64_t tiles = 0;
    /** Tiles finalized by the score-only probe pass (dead on x-drop). */
    std::uint64_t score_only_hits = 0;
    /** cycle-model backend only: summed per-tile device cycles. */
    std::uint64_t device_cycles = 0;
    /** cycle-model backend only: makespan of the flushes when their
     *  tiles are packed greedily onto the configured array count. */
    std::uint64_t device_makespan_cycles = 0;
    /** One entry per flush: its tile count (drives the
     *  wga.batch.tiles_per_flush histogram). */
    std::vector<std::uint32_t> flush_sizes;

    void
    merge(const BatchExecStats& other)
    {
        flushes += other.flushes;
        tiles += other.tiles;
        score_only_hits += other.score_only_hits;
        device_cycles += other.device_cycles;
        device_makespan_cycles += other.device_makespan_cycles;
        flush_sizes.insert(flush_sizes.end(), other.flush_sizes.begin(),
                           other.flush_sizes.end());
    }
};

/**
 * A batch execution backend. Implementations are stateless (const
 * methods, shareable across threads); all mutable state lives in the
 * caller's batch/result buffers and the per-call stats.
 */
class AlignBackend {
  public:
    virtual ~AlignBackend() = default;

    /** Run one banded-SW filter tile per batch entry. `out` must have
     *  exactly batch.size() elements; out[i] is the result for tile i. */
    virtual void bsw_batch(const TileBatch& batch,
                           const ScoringParams& scoring, std::size_t band,
                           const BatchOptions& options,
                           std::span<BswResult> out,
                           BatchExecStats* stats) const = 0;

    /** Run one GACT-X extension tile per batch entry. Same layout
     *  contract as bsw_batch. */
    virtual void gactx_batch(const TileBatch& batch,
                             const GactXParams& params,
                             const BatchOptions& options,
                             std::span<TileResult> out,
                             BatchExecStats* stats) const = 0;
};

/** The backend singletons behind the KernelRegistry backend table. */
const AlignBackend* serial_backend();
const AlignBackend* cpu_scalar_backend();
const AlignBackend* cpu_simd_backend();
/** Defined in src/hw/backend_cycle.cpp (resolved at static-lib link,
 *  the same pattern as the per-ISA kernel_ops hooks). */
const AlignBackend* cycle_model_backend();

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_BATCH_H
