/**
 * @file
 * Scoring model: substitution matrix + affine gap penalties.
 *
 * The paper's Table II parameters (the LASTZ default HOXD-like matrix with
 * gap open 430 / gap extend 30) are the library defaults. Penalties are
 * stored as positive magnitudes and *subtracted* by the DP kernels, which
 * mirrors the hardware (Section IV, Eqs. 1-3): opening a gap costs `o` for
 * its first base and `e` for each additional base.
 */
#ifndef DARWIN_ALIGN_SCORING_H
#define DARWIN_ALIGN_SCORING_H

#include <array>
#include <cstdint>

#include "seq/alphabet.h"

namespace darwin::align {

/** Signed score type used by every DP kernel. */
using Score = std::int32_t;

/** A very negative sentinel that survives additions without overflow. */
inline constexpr Score kScoreNegInf = INT32_MIN / 4;

/** Substitution matrix + affine gap model. */
struct ScoringParams {
    /** W[a][b]: score of aligning base codes a and b (N included). */
    std::array<std::array<Score, seq::kNumCodes>, seq::kNumCodes> matrix{};

    /** Cost of the first base of a gap (positive magnitude). */
    Score gap_open = 430;

    /** Cost of each subsequent gap base (positive magnitude). */
    Score gap_extend = 30;

    /** Substitution score for a pair of base codes. */
    Score
    substitution(std::uint8_t a, std::uint8_t b) const
    {
        return matrix[a][b];
    }

    /** Total cost of a gap of `len` bases: o + (len-1)*e. */
    Score
    gap_cost(std::uint64_t len) const
    {
        if (len == 0)
            return 0;
        return gap_open + static_cast<Score>(len - 1) * gap_extend;
    }

    /**
     * The paper's Table II parameters: LASTZ default substitution scores
     * (A/C/G/T as printed) with N scoring -100 against everything, gap
     * open 430, gap extend 30.
     */
    static ScoringParams paper_defaults();

    /** A simple +1/-1 unit matrix with cheap gaps, used in tests. */
    static ScoringParams unit(Score match = 1, Score mismatch = -1,
                              Score open = 2, Score extend = 1);
};

}  // namespace darwin::align

#endif  // DARWIN_ALIGN_SCORING_H
