#include "align/extension.h"

#include <algorithm>
#include <vector>

#include "fault/cancel.h"
#include "util/logging.h"

namespace darwin::align {

namespace {

/**
 * Split a tile path at the overlap boundary. Returns the kept prefix and
 * the target/query bases it consumes.
 *
 * If the path's endpoint lies inside the overlap region (either axis at or
 * beyond `boundary`), the path is cut at the first step that touches the
 * boundary, and the cut point seeds the next tile. Otherwise the whole
 * path is kept.
 */
struct KeptPath {
    Cigar cigar;
    std::size_t target_consumed = 0;
    std::size_t query_consumed = 0;
};

KeptPath
clip_at_overlap(const TileResult& tile, std::size_t boundary)
{
    KeptPath kept;
    if (tile.target_max < boundary && tile.query_max < boundary) {
        kept.cigar = tile.cigar;
        kept.target_consumed = tile.target_max;
        kept.query_consumed = tile.query_max;
        return kept;
    }
    std::size_t ti = 0;
    std::size_t qi = 0;
    for (const auto& run : tile.cigar.runs()) {
        for (std::uint32_t k = 0; k < run.length; ++k) {
            if (ti >= boundary || qi >= boundary)
                return kept;
            switch (run.op) {
              case EditOp::Match:
              case EditOp::Mismatch:
                ++ti;
                ++qi;
                break;
              case EditOp::Insert:
                ++qi;
                break;
              case EditOp::Delete:
                ++ti;
                break;
            }
            kept.cigar.push(run.op);
            kept.target_consumed = ti;
            kept.query_consumed = qi;
        }
    }
    return kept;
}

}  // namespace

AnchorExtender::AnchorExtender(seq::BaseView target, seq::BaseView query,
                               std::size_t anchor_t, std::size_t anchor_q,
                               std::size_t tile_size,
                               std::size_t tile_overlap)
    : target_(target), query_(query), anchor_t_(anchor_t),
      anchor_q_(anchor_q), tile_size_(tile_size)
{
    require(anchor_t_ <= target_.size() && anchor_q_ <= query_.size(),
            "extend_anchor: anchor outside spans");
    require(tile_size_ > tile_overlap, "extend_direction: tile <= overlap");
    boundary_ = tile_size_ - tile_overlap;
    // Right extension first: forward slices starting at the anchor.
    remaining_t_ = target_.size() - anchor_t_;
    remaining_q_ = query_.size() - anchor_q_;
}

void
AnchorExtender::end_direction()
{
    DirectionResult& dir = phase_ == Phase::Right ? right_ : left_;
    dir.cigar = std::move(cur_cigar_);
    dir.target_consumed = pos_t_;
    dir.query_consumed = pos_q_;
    cur_cigar_ = Cigar{};
    pos_t_ = 0;
    pos_q_ = 0;
    if (phase_ == Phase::Right) {
        // Left: reversed slices ending at the anchor.
        phase_ = Phase::Left;
        remaining_t_ = anchor_t_;
        remaining_q_ = anchor_q_;
    } else {
        phase_ = Phase::Done;
        remaining_t_ = 0;
        remaining_q_ = 0;
    }
}

bool
AnchorExtender::next_tile(std::span<const std::uint8_t>* target_tile,
                          std::span<const std::uint8_t>* query_tile)
{
    require(!staged_, "AnchorExtender: staged tile not consumed");
    // A direction whose sequences are exhausted ends without a poll —
    // the serial loop's while condition.
    while (phase_ != Phase::Done &&
           (pos_t_ >= remaining_t_ || pos_q_ >= remaining_q_))
        end_direction();
    if (phase_ == Phase::Done)
        return false;

    fault::poll("extend.tile");
    const std::size_t rlen = std::min(tile_size_, remaining_t_ - pos_t_);
    const std::size_t qlen = std::min(tile_size_, remaining_q_ - pos_q_);
    if (phase_ == Phase::Right) {
        target_.fetch(anchor_t_ + pos_t_, rlen, &target_buf_);
        query_.fetch(anchor_q_ + pos_q_, qlen, &query_buf_);
    } else {
        // Slice [anchor - pos - len, anchor - pos), reversed.
        target_.fetch_reversed(anchor_t_ - pos_t_, rlen, &target_buf_);
        query_.fetch_reversed(anchor_q_ - pos_q_, qlen, &query_buf_);
    }
    staged_ = true;
    *target_tile = {target_buf_.data(), rlen};
    *query_tile = {query_buf_.data(), qlen};
    return true;
}

void
AnchorExtender::consume(const TileResult& tile)
{
    require(staged_, "AnchorExtender: consume without a staged tile");
    staged_ = false;
    stats_.absorb(tile);
    if (tile.max_score <= 0) {
        ++stats_.xdrop_terminations;
        end_direction();
        return;
    }

    // When the tile does not fill the nominal size (sequence end), the
    // overlap clipping still applies against the nominal boundary; a
    // short tile's path simply ends before it.
    const KeptPath kept = clip_at_overlap(tile, boundary_);
    if (kept.target_consumed == 0 && kept.query_consumed == 0) {
        end_direction();  // no forward progress: stop rather than loop
        return;
    }
    cur_cigar_.append(kept.cigar);
    pos_t_ += kept.target_consumed;
    pos_q_ += kept.query_consumed;

    // If the whole path was kept (it ended before the overlap region),
    // the alignment genuinely ended inside this tile.
    if (tile.target_max < boundary_ && tile.query_max < boundary_)
        end_direction();
}

Alignment
AnchorExtender::finish(const ScoringParams& scoring) const
{
    require(phase_ == Phase::Done, "AnchorExtender: finish before done");
    Alignment out;
    out.target_start = anchor_t_ - left_.target_consumed;
    out.target_end = anchor_t_ + right_.target_consumed;
    out.query_start = anchor_q_ - left_.query_consumed;
    out.query_end = anchor_q_ + right_.query_consumed;

    // The left path was computed on reversed sequences: flip the run
    // order to express it forward, then join with the right path.
    Cigar left_forward = left_.cigar;
    left_forward.reverse();
    out.cigar = std::move(left_forward);
    out.cigar.append(right_.cigar);

    if (out.cigar.empty())
        return out;
    std::vector<std::uint8_t> target_scratch;
    std::vector<std::uint8_t> query_scratch;
    out.score = out.cigar.score(
        target_.materialize(out.target_start,
                            out.target_end - out.target_start,
                            &target_scratch),
        query_.materialize(out.query_start,
                           out.query_end - out.query_start, &query_scratch),
        scoring);
    return out;
}

Alignment
extend_anchor(seq::BaseView target, seq::BaseView query,
              std::size_t anchor_t, std::size_t anchor_q,
              const TileAligner& aligner, const ScoringParams& scoring,
              ExtensionStats* stats)
{
    AnchorExtender extender(target, query, anchor_t, anchor_q,
                            aligner.tile_size(), aligner.tile_overlap());
    std::span<const std::uint8_t> target_tile;
    std::span<const std::uint8_t> query_tile;
    while (extender.next_tile(&target_tile, &query_tile))
        extender.consume(aligner.align_tile(target_tile, query_tile));
    if (stats)
        stats->merge(extender.stats());
    return extender.finish(scoring);
}

Alignment
extend_anchor(std::span<const std::uint8_t> target,
              std::span<const std::uint8_t> query, std::size_t anchor_t,
              std::size_t anchor_q, const TileAligner& aligner,
              const ScoringParams& scoring, ExtensionStats* stats)
{
    return extend_anchor(seq::BaseView(target), seq::BaseView(query),
                         anchor_t, anchor_q, aligner, scoring, stats);
}

}  // namespace darwin::align
