#include "align/extension.h"

#include <algorithm>
#include <vector>

#include "fault/cancel.h"
#include "util/logging.h"

namespace darwin::align {

namespace {

/**
 * Split a tile path at the overlap boundary. Returns the kept prefix and
 * the target/query bases it consumes.
 *
 * If the path's endpoint lies inside the overlap region (either axis at or
 * beyond `boundary`), the path is cut at the first step that touches the
 * boundary, and the cut point seeds the next tile. Otherwise the whole
 * path is kept.
 */
struct KeptPath {
    Cigar cigar;
    std::size_t target_consumed = 0;
    std::size_t query_consumed = 0;
};

KeptPath
clip_at_overlap(const TileResult& tile, std::size_t boundary)
{
    KeptPath kept;
    if (tile.target_max < boundary && tile.query_max < boundary) {
        kept.cigar = tile.cigar;
        kept.target_consumed = tile.target_max;
        kept.query_consumed = tile.query_max;
        return kept;
    }
    std::size_t ti = 0;
    std::size_t qi = 0;
    for (const auto& run : tile.cigar.runs()) {
        for (std::uint32_t k = 0; k < run.length; ++k) {
            if (ti >= boundary || qi >= boundary)
                return kept;
            switch (run.op) {
              case EditOp::Match:
              case EditOp::Mismatch:
                ++ti;
                ++qi;
                break;
              case EditOp::Insert:
                ++qi;
                break;
              case EditOp::Delete:
                ++ti;
                break;
            }
            kept.cigar.push(run.op);
            kept.target_consumed = ti;
            kept.query_consumed = qi;
        }
    }
    return kept;
}

/** One-directional tiled extension over forward-oriented spans. */
struct DirectionalResult {
    Cigar cigar;  ///< in the orientation of the provided spans
    std::size_t target_consumed = 0;
    std::size_t query_consumed = 0;
};

/**
 * Extend right over (target, query) starting at their origins, feeding
 * `slice(pos, len)` tiles to the aligner. The `fetch` callbacks produce
 * tile buffers so the same code serves the left extension (which fetches
 * reversed slices).
 */
template <typename FetchTarget, typename FetchQuery>
DirectionalResult
extend_direction(std::size_t target_remaining, std::size_t query_remaining,
                 FetchTarget&& fetch_target, FetchQuery&& fetch_query,
                 const TileAligner& aligner, ExtensionStats* stats)
{
    DirectionalResult out;
    const std::size_t tile_size = aligner.tile_size();
    const std::size_t overlap = aligner.tile_overlap();
    require(tile_size > overlap, "extend_direction: tile <= overlap");
    const std::size_t boundary = tile_size - overlap;

    std::size_t pos_t = 0;
    std::size_t pos_q = 0;
    while (pos_t < target_remaining && pos_q < query_remaining) {
        fault::poll("extend.tile");
        const std::size_t rlen =
            std::min(tile_size, target_remaining - pos_t);
        const std::size_t qlen =
            std::min(tile_size, query_remaining - pos_q);
        auto target_tile = fetch_target(pos_t, rlen);
        auto query_tile = fetch_query(pos_q, qlen);
        const TileResult tile = aligner.align_tile(
            {target_tile.data(), target_tile.size()},
            {query_tile.data(), query_tile.size()});
        if (stats)
            stats->absorb(tile);
        if (tile.max_score <= 0) {
            if (stats)
                ++stats->xdrop_terminations;
            break;
        }

        // When the tile does not fill the nominal size (sequence end), the
        // overlap clipping still applies against the nominal boundary; a
        // short tile's path simply ends before it.
        const KeptPath kept = clip_at_overlap(tile, boundary);
        if (kept.target_consumed == 0 && kept.query_consumed == 0)
            break;  // no forward progress: stop rather than loop
        out.cigar.append(kept.cigar);
        pos_t += kept.target_consumed;
        pos_q += kept.query_consumed;

        // If the whole path was kept (it ended before the overlap region),
        // the alignment genuinely ended inside this tile.
        if (tile.target_max < boundary && tile.query_max < boundary)
            break;
    }
    out.target_consumed = pos_t;
    out.query_consumed = pos_q;
    return out;
}

}  // namespace

Alignment
extend_anchor(std::span<const std::uint8_t> target,
              std::span<const std::uint8_t> query, std::size_t anchor_t,
              std::size_t anchor_q, const TileAligner& aligner,
              const ScoringParams& scoring, ExtensionStats* stats)
{
    require(anchor_t <= target.size() && anchor_q <= query.size(),
            "extend_anchor: anchor outside spans");

    // Right: forward slices starting at the anchor.
    DirectionalResult right = extend_direction(
        target.size() - anchor_t, query.size() - anchor_q,
        [&](std::size_t pos, std::size_t len) {
            return std::vector<std::uint8_t>(
                target.begin() +
                    static_cast<std::ptrdiff_t>(anchor_t + pos),
                target.begin() +
                    static_cast<std::ptrdiff_t>(anchor_t + pos + len));
        },
        [&](std::size_t pos, std::size_t len) {
            return std::vector<std::uint8_t>(
                query.begin() +
                    static_cast<std::ptrdiff_t>(anchor_q + pos),
                query.begin() +
                    static_cast<std::ptrdiff_t>(anchor_q + pos + len));
        },
        aligner, stats);

    // Left: reversed slices ending at the anchor.
    DirectionalResult left = extend_direction(
        anchor_t, anchor_q,
        [&](std::size_t pos, std::size_t len) {
            // Slice [anchor - pos - len, anchor - pos), reversed.
            std::vector<std::uint8_t> buf(len);
            for (std::size_t k = 0; k < len; ++k)
                buf[k] = target[anchor_t - pos - 1 - k];
            return buf;
        },
        [&](std::size_t pos, std::size_t len) {
            std::vector<std::uint8_t> buf(len);
            for (std::size_t k = 0; k < len; ++k)
                buf[k] = query[anchor_q - pos - 1 - k];
            return buf;
        },
        aligner, stats);

    Alignment out;
    out.target_start = anchor_t - left.target_consumed;
    out.target_end = anchor_t + right.target_consumed;
    out.query_start = anchor_q - left.query_consumed;
    out.query_end = anchor_q + right.query_consumed;

    // The left path was computed on reversed sequences: flip the run
    // order to express it forward, then join with the right path.
    Cigar left_forward = left.cigar;
    left_forward.reverse();
    out.cigar = std::move(left_forward);
    out.cigar.append(right.cigar);

    if (out.cigar.empty())
        return out;
    out.score = out.cigar.score(
        target.subspan(out.target_start, out.target_end - out.target_start),
        query.subspan(out.query_start, out.query_end - out.query_start),
        scoring);
    return out;
}

}  // namespace darwin::align
