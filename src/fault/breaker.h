/**
 * @file
 * Circuit breaker for degraded serving.
 *
 * The serve daemon watches the rolling budget-trip / injected-fault
 * rate of full-fidelity align requests. When the failure fraction of
 * the last `window` outcomes crosses `trip_ratio` the breaker *opens*:
 * every request is served in degraded mode (fault/degrade.h — narrower
 * band, tighter x-drops, capped seed hits, forced score-only probe
 * pass) until `cooldown_seconds` elapse. Then exactly one request runs
 * at full fidelity as a *half-open* probe; its outcome decides whether
 * the breaker closes (healthy again) or re-opens for another cooldown.
 *
 * Degraded outcomes never feed the rolling window — only full-fidelity
 * attempts say anything about whether full fidelity is healthy.
 *
 * All methods take an explicit time point (defaulted to now) so tests
 * drive the state machine deterministically without sleeping.
 */
#ifndef DARWIN_FAULT_BREAKER_H
#define DARWIN_FAULT_BREAKER_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>

namespace darwin::fault {

enum class BreakerState { Closed, HalfOpen, Open };

const char* breaker_state_name(BreakerState state);

/** Trip/recovery knobs. */
struct BreakerOptions {
    /** Rolling window of full-fidelity outcomes. */
    std::size_t window = 32;
    /** Outcomes required before the ratio is trusted. */
    std::size_t min_samples = 8;
    /** Failure fraction of the window that opens the breaker. */
    double trip_ratio = 0.5;
    /** Open -> half-open probe delay. */
    double cooldown_seconds = 5.0;
};

class CircuitBreaker {
  public:
    using Clock = std::chrono::steady_clock;

    explicit CircuitBreaker(BreakerOptions options = {});

    /**
     * Ask before serving: true means serve this request degraded.
     * Open state degrades everything until the cooldown elapses, at
     * which point exactly one caller is handed the full-fidelity
     * half-open probe (returns false for that caller alone).
     */
    bool should_degrade(Clock::time_point now = Clock::now());

    /**
     * Report the outcome of a *full-fidelity* request (degraded
     * outcomes must not be recorded). failure = budget trip or
     * injected fault; protocol errors don't count. A half-open probe
     * outcome resolves the trial: success closes the breaker, failure
     * re-opens it for another cooldown.
     */
    void record(bool failure, Clock::time_point now = Clock::now());

    BreakerState state() const;
    /** Closed->Open (and HalfOpen->Open) transitions so far. */
    std::uint64_t trips() const;

  private:
    void open_locked(Clock::time_point now);

    BreakerOptions options_;
    mutable std::mutex mutex_;
    BreakerState state_ = BreakerState::Closed;
    std::deque<bool> outcomes_;  // true = failure
    std::size_t failures_ = 0;
    Clock::time_point open_until_{};
    bool probe_inflight_ = false;
    std::uint64_t trips_ = 0;
};

}  // namespace darwin::fault

#endif  // DARWIN_FAULT_BREAKER_H
