#include "fault/fault_plan.h"

#include <cstdlib>
#include <new>
#include <thread>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::fault {

namespace {

std::atomic<const FaultPlan*> g_plan{nullptr};

/** splitmix64 — decorrelates the (seed, probe, pair, visit) tuple. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

bool
probe_matches(const std::string& pattern, const char* probe)
{
    if (!pattern.empty() && pattern.back() == '*')
        return std::string_view(probe).starts_with(
            std::string_view(pattern).substr(0, pattern.size() - 1));
    return pattern == probe;
}

std::uint64_t
parse_u64(const std::string& value, const std::string& entry_text)
{
    try {
        std::size_t used = 0;
        const unsigned long long parsed = std::stoull(value, &used);
        if (used != value.size())
            throw std::invalid_argument(value);
        return parsed;
    } catch (const std::exception&) {
        fatal(strprintf("fault: bad numeric value '%s' in entry '%s'",
                        value.c_str(), entry_text.c_str()));
    }
}

}  // namespace

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw: return "throw";
      case FaultKind::Stall: return "stall";
      case FaultKind::Oom: return "oom";
    }
    return "unknown";
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    for (const std::string& entry_text : split(spec, ';')) {
        const std::string text = trim(entry_text);
        if (text.empty())
            continue;
        const auto fields = split(text, ':');
        if (fields.size() < 2) {
            fatal(strprintf("fault: entry '%s' needs 'probe:kind[:...]'",
                            text.c_str()));
        }
        FaultSpec spec_out;
        spec_out.probe = trim(fields[0]);
        if (spec_out.probe.empty())
            fatal(strprintf("fault: empty probe in entry '%s'",
                            text.c_str()));
        const std::string kind = trim(fields[1]);
        if (kind == "throw") {
            spec_out.kind = FaultKind::Throw;
        } else if (kind == "stall") {
            spec_out.kind = FaultKind::Stall;
        } else if (kind == "oom") {
            spec_out.kind = FaultKind::Oom;
        } else {
            fatal(strprintf("fault: unknown kind '%s' in entry '%s' "
                            "(throw|stall|oom)",
                            kind.c_str(), text.c_str()));
        }
        for (std::size_t f = 2; f < fields.size(); ++f) {
            const std::string field = trim(fields[f]);
            const auto eq = field.find('=');
            if (eq == std::string::npos) {
                fatal(strprintf("fault: expected key=value, got '%s' in "
                                "entry '%s'",
                                field.c_str(), text.c_str()));
            }
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            if (key == "pair") {
                spec_out.pair =
                    static_cast<std::size_t>(parse_u64(value, text));
            } else if (key == "after") {
                spec_out.after = parse_u64(value, text);
            } else if (key == "count") {
                spec_out.count = parse_u64(value, text);
            } else if (key == "ms") {
                spec_out.stall_ms =
                    static_cast<std::uint32_t>(parse_u64(value, text));
            } else if (key == "p") {
                try {
                    spec_out.probability = std::stod(value);
                } catch (const std::exception&) {
                    fatal(strprintf("fault: bad probability '%s' in "
                                    "entry '%s'",
                                    value.c_str(), text.c_str()));
                }
                if (spec_out.probability < 0.0 ||
                    spec_out.probability > 1.0) {
                    fatal(strprintf("fault: probability %s out of [0,1] "
                                    "in entry '%s'",
                                    value.c_str(), text.c_str()));
                }
            } else if (key == "seed") {
                spec_out.seed = parse_u64(value, text);
            } else {
                fatal(strprintf("fault: unknown key '%s' in entry '%s'",
                                key.c_str(), text.c_str()));
            }
        }
        auto entry = std::make_unique<Entry>();
        entry->spec = spec_out;
        plan.entries_.push_back(std::move(entry));
    }
    return plan;
}

FaultPlan
FaultPlan::from_env()
{
    const char* spec = std::getenv("DARWIN_FAULT");
    return parse(spec != nullptr ? spec : "");
}

const std::vector<FaultSpec>
FaultPlan::specs() const
{
    std::vector<FaultSpec> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_)
        out.push_back(entry->spec);
    return out;
}

std::uint64_t
FaultPlan::injected() const
{
    return injected_.load(std::memory_order_relaxed);
}

void
FaultPlan::fire(const char* probe, std::size_t pair) const
{
    for (const auto& entry : entries_) {
        const FaultSpec& spec = entry->spec;
        if (!probe_matches(spec.probe, probe))
            continue;
        if (spec.pair != kNoPair && spec.pair != pair)
            continue;
        bool fires = false;
        {
            std::lock_guard<std::mutex> lock(entry->mutex);
            auto& [visits, fired] = entry->state[pair];
            ++visits;
            if (visits <= spec.after)
                continue;
            if (spec.count != 0 && fired >= spec.count)
                continue;
            if (spec.probability < 1.0) {
                const std::uint64_t h = mix64(
                    mix64(spec.seed ^ fnv1a64(spec.probe)) ^
                    mix64(static_cast<std::uint64_t>(pair) * 0x9e37ULL +
                          visits));
                const double u = static_cast<double>(h >> 11) *
                                 (1.0 / 9007199254740992.0);  // 2^-53
                if (u >= spec.probability)
                    continue;
            }
            ++fired;
            fires = true;
        }
        if (!fires)
            continue;
        injected_.fetch_add(1, std::memory_order_relaxed);
        switch (spec.kind) {
          case FaultKind::Throw:
            throw InjectedFault(
                probe, strprintf("injected fault at %s (pair %zu)", probe,
                                 pair));
          case FaultKind::Oom:
            throw std::bad_alloc();
          case FaultKind::Stall:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(spec.stall_ms));
            break;
        }
    }
}

void
install_fault_plan(const FaultPlan* plan)
{
    g_plan.store(plan, std::memory_order_release);
}

const FaultPlan*
active_fault_plan()
{
    return g_plan.load(std::memory_order_acquire);
}

}  // namespace darwin::fault
