#include "fault/quarantine.h"

#include <fstream>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::fault {

const char*
pair_status_name(PairStatus status)
{
    switch (status) {
      case PairStatus::Clean: return "clean";
      case PairStatus::Degraded: return "degraded";
      case PairStatus::Quarantined: return "quarantined";
      case PairStatus::Interrupted: return "interrupted";
    }
    return "unknown";
}

const char*
fail_reason_name(FailReason reason)
{
    switch (reason) {
      case FailReason::None: return "none";
      case FailReason::WallTime: return "walltime";
      case FailReason::Cells: return "cells";
      case FailReason::HeapBytes: return "heapbytes";
      case FailReason::OutOfMemory: return "oom";
      case FailReason::Injected: return "injected";
      case FailReason::Exception: return "exception";
      case FailReason::Interrupted: return "interrupted";
    }
    return "unknown";
}

FailReason
fail_reason_from_cancel(CancelReason reason)
{
    switch (reason) {
      case CancelReason::WallTime: return FailReason::WallTime;
      case CancelReason::Cells: return FailReason::Cells;
      case CancelReason::HeapBytes: return FailReason::HeapBytes;
      case CancelReason::External: return FailReason::Interrupted;
      case CancelReason::None: break;
    }
    return FailReason::None;
}

bool
is_budget_overrun(FailReason reason)
{
    return reason == FailReason::WallTime || reason == FailReason::Cells ||
           reason == FailReason::HeapBytes;
}

std::string
quarantine_report_json(const std::vector<QuarantineRecord>& records)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const QuarantineRecord& r = records[i];
        out += strprintf(
            "  {\"pair\": %zu, \"name\": %s, \"stage\": %s, "
            "\"reason\": %s, \"message\": %s, \"attempts\": %u, "
            "\"elapsed_seconds\": %.6f, \"cells\": %llu, "
            "\"heap_bytes\": %llu}%s\n",
            r.pair_index, json_quote(r.name).c_str(),
            json_quote(r.stage).c_str(),
            json_quote(fail_reason_name(r.reason)).c_str(),
            json_quote(r.message).c_str(), r.attempts, r.elapsed_seconds,
            static_cast<unsigned long long>(r.cells_charged),
            static_cast<unsigned long long>(r.heap_bytes_charged),
            i + 1 < records.size() ? "," : "");
    }
    out += "]\n";
    return out;
}

void
write_quarantine_json(const std::string& path,
                      const std::vector<QuarantineRecord>& records)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal(strprintf("cannot write quarantine report: %s",
                        path.c_str()));
    out << quarantine_report_json(records);
    if (!out)
        fatal(strprintf("error writing quarantine report: %s",
                        path.c_str()));
}

}  // namespace darwin::fault
