/**
 * @file
 * Cooperative cancellation and per-pair execution budgets.
 *
 * A CancelToken carries the budgets of one unit of work (in the batch
 * engine: one manifest pair) — a wall-clock deadline, a cap on DP cells
 * computed, and a cap on the estimated transient heap bytes. The token
 * is *cooperative*: long-running code calls fault::poll("probe.name") at
 * natural outer-loop boundaries (a GACT-X stripe, a D-SOFT chunk, a
 * filter tile) and the poll throws CancelledError once any budget is
 * exceeded or the token was cancelled externally.
 *
 * Tokens are installed per thread with a ContextScope; code below the
 * scope (stages, kernel façades, the wavefront scaffold) polls through
 * the free functions without ever threading a token through its
 * signatures. When no scope is installed — the serial pipeline, tests,
 * benches — poll() is one thread-local load and a branch, and results
 * are bit-identical either way: polling never alters any computation,
 * it can only abandon one.
 *
 * The module also owns the process-wide shutdown flag the CLIs' signal
 * handlers set (async-signal-safe); the batch engine treats a requested
 * shutdown as an external cancellation of every in-flight pair.
 */
#ifndef DARWIN_FAULT_CANCEL_H
#define DARWIN_FAULT_CANCEL_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace darwin::fault {

/** Why a token stopped the work. */
enum class CancelReason : int {
    None = 0,
    WallTime,   ///< wall-clock deadline passed
    Cells,      ///< DP cell budget exhausted
    HeapBytes,  ///< estimated heap budget exhausted
    External,   ///< cancel() — shutdown or the pair failed elsewhere
};

/** Lowercase stable name ("walltime", "cells", ...). */
const char* cancel_reason_name(CancelReason reason);

/** Budgets for one unit of work; 0 means unlimited for each axis. */
struct Budget {
    double wall_seconds = 0.0;
    std::uint64_t max_cells = 0;
    std::uint64_t max_heap_bytes = 0;

    bool
    unlimited() const
    {
        return wall_seconds <= 0.0 && max_cells == 0 && max_heap_bytes == 0;
    }
};

/** Thrown by poll() when a budget is exceeded or cancel() was called. */
class CancelledError : public std::runtime_error {
  public:
    CancelledError(CancelReason reason, std::string probe,
                   const std::string& message)
        : std::runtime_error(message), reason_(reason),
          probe_(std::move(probe))
    {
    }

    CancelReason reason() const { return reason_; }

    /** The probe point that observed the overrun. */
    const std::string& probe() const { return probe_; }

  private:
    CancelReason reason_;
    std::string probe_;
};

/**
 * One unit of work's budgets plus its accumulated charges. All methods
 * are thread-safe; arm() must not race with charges (the batch engine
 * arms a pair's token only while no task of that pair is running).
 */
class CancelToken {
  public:
    /** Reset charges, clear any cancellation, and start the budgets
     *  (the wall deadline counts from now). */
    void arm(const Budget& budget);

    /** External cancellation; sticky until the next arm(). Works on
     *  unarmed tokens too (reason External or stronger wins first). */
    void cancel(CancelReason reason);

    void
    charge_cells(std::uint64_t n)
    {
        cells_.fetch_add(n, std::memory_order_relaxed);
    }

    void
    charge_heap_bytes(std::uint64_t n)
    {
        heap_bytes_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    cells_charged() const
    {
        return cells_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    heap_bytes_charged() const
    {
        return heap_bytes_.load(std::memory_order_relaxed);
    }

    bool
    armed() const
    {
        return armed_.load(std::memory_order_acquire);
    }

    /** Non-throwing check: the first exceeded budget (cancellation
     *  first), or None. */
    CancelReason exceeded() const;

    /** Throw CancelledError when exceeded() != None. */
    void poll(const char* probe) const;

  private:
    Budget budget_;
    std::chrono::steady_clock::time_point deadline_{};
    std::atomic<bool> armed_{false};
    std::atomic<std::uint64_t> cells_{0};
    std::atomic<std::uint64_t> heap_bytes_{0};
    std::atomic<int> cancelled_{static_cast<int>(CancelReason::None)};
};

/** Pair index reported to probes when no scope is installed. */
inline constexpr std::size_t kNoPair =
    std::numeric_limits<std::size_t>::max();

/**
 * RAII installation of the calling thread's (token, pair index) context.
 * Nests: the previous context is restored on destruction.
 */
class ContextScope {
  public:
    ContextScope(CancelToken* token, std::size_t pair_index);
    ~ContextScope();

    ContextScope(const ContextScope&) = delete;
    ContextScope& operator=(const ContextScope&) = delete;

  private:
    CancelToken* prev_token_;
    std::size_t prev_pair_;
};

/** The calling thread's installed token (nullptr outside any scope). */
CancelToken* current_token();

/** The calling thread's pair index (kNoPair outside any scope). */
std::size_t current_pair();

/**
 * The probe call sites use. In order: fires the installed FaultPlan's
 * matching injected faults (fault_plan.h), then polls the thread's
 * CancelToken. A no-op costing two atomic/TLS loads when neither is
 * installed, so probes can live in library hot loops unconditionally.
 */
void poll(const char* probe);

/** Charge the thread's token (no-op without a scope). */
void charge_cells(std::uint64_t n);
void charge_heap_bytes(std::uint64_t n);

/**
 * Process-wide shutdown flag. request_shutdown() is async-signal-safe;
 * the batch engine observes it between tasks and cancels every pair's
 * token, and the CLIs flush observability state before exiting.
 */
void request_shutdown();
void clear_shutdown();
bool shutdown_requested();

}  // namespace darwin::fault

#endif  // DARWIN_FAULT_CANCEL_H
