#include "fault/cancel.h"

#include "fault/fault_plan.h"
#include "util/strings.h"

namespace darwin::fault {

namespace {

thread_local CancelToken* t_token = nullptr;
thread_local std::size_t t_pair = kNoPair;

std::atomic<bool> g_shutdown{false};

}  // namespace

const char*
cancel_reason_name(CancelReason reason)
{
    switch (reason) {
      case CancelReason::None: return "none";
      case CancelReason::WallTime: return "walltime";
      case CancelReason::Cells: return "cells";
      case CancelReason::HeapBytes: return "heapbytes";
      case CancelReason::External: return "external";
    }
    return "unknown";
}

void
CancelToken::arm(const Budget& budget)
{
    budget_ = budget;
    cells_.store(0, std::memory_order_relaxed);
    heap_bytes_.store(0, std::memory_order_relaxed);
    cancelled_.store(static_cast<int>(CancelReason::None),
                     std::memory_order_relaxed);
    if (budget_.wall_seconds > 0.0) {
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(budget_.wall_seconds));
    }
    armed_.store(true, std::memory_order_release);
}

void
CancelToken::cancel(CancelReason reason)
{
    int expected = static_cast<int>(CancelReason::None);
    cancelled_.compare_exchange_strong(expected, static_cast<int>(reason),
                                       std::memory_order_release);
}

CancelReason
CancelToken::exceeded() const
{
    const int cancelled = cancelled_.load(std::memory_order_acquire);
    if (cancelled != static_cast<int>(CancelReason::None))
        return static_cast<CancelReason>(cancelled);
    if (!armed_.load(std::memory_order_acquire))
        return CancelReason::None;
    if (budget_.max_cells != 0 &&
        cells_.load(std::memory_order_relaxed) > budget_.max_cells)
        return CancelReason::Cells;
    if (budget_.max_heap_bytes != 0 &&
        heap_bytes_.load(std::memory_order_relaxed) > budget_.max_heap_bytes)
        return CancelReason::HeapBytes;
    if (budget_.wall_seconds > 0.0 &&
        std::chrono::steady_clock::now() > deadline_)
        return CancelReason::WallTime;
    return CancelReason::None;
}

void
CancelToken::poll(const char* probe) const
{
    const CancelReason reason = exceeded();
    if (reason == CancelReason::None)
        return;
    std::string detail;
    switch (reason) {
      case CancelReason::WallTime:
        detail = strprintf("wall budget %.3fs exceeded",
                           budget_.wall_seconds);
        break;
      case CancelReason::Cells:
        detail = strprintf("cell budget %llu exceeded (charged %llu)",
                           static_cast<unsigned long long>(
                               budget_.max_cells),
                           static_cast<unsigned long long>(cells_charged()));
        break;
      case CancelReason::HeapBytes:
        detail = strprintf("heap budget %llu bytes exceeded (charged %llu)",
                           static_cast<unsigned long long>(
                               budget_.max_heap_bytes),
                           static_cast<unsigned long long>(
                               heap_bytes_charged()));
        break;
      default:
        detail = "cancelled";
        break;
    }
    throw CancelledError(reason, probe,
                         strprintf("cancelled at %s: %s", probe,
                                   detail.c_str()));
}

ContextScope::ContextScope(CancelToken* token, std::size_t pair_index)
    : prev_token_(t_token), prev_pair_(t_pair)
{
    t_token = token;
    t_pair = pair_index;
}

ContextScope::~ContextScope()
{
    t_token = prev_token_;
    t_pair = prev_pair_;
}

CancelToken*
current_token()
{
    return t_token;
}

std::size_t
current_pair()
{
    return t_pair;
}

void
poll(const char* probe)
{
    if (const FaultPlan* plan = active_fault_plan())
        plan->fire(probe, t_pair);
    if (t_token != nullptr)
        t_token->poll(probe);
}

void
charge_cells(std::uint64_t n)
{
    if (t_token != nullptr)
        t_token->charge_cells(n);
}

void
charge_heap_bytes(std::uint64_t n)
{
    if (t_token != nullptr)
        t_token->charge_heap_bytes(n);
}

void
request_shutdown()
{
    // Async-signal-safe: one relaxed atomic store, no allocation/locks.
    g_shutdown.store(true, std::memory_order_relaxed);
}

void
clear_shutdown()
{
    g_shutdown.store(false, std::memory_order_relaxed);
}

bool
shutdown_requested()
{
    return g_shutdown.load(std::memory_order_relaxed);
}

}  // namespace darwin::fault
