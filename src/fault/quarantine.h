/**
 * @file
 * Terminal per-pair outcomes for the fault-tolerant batch engine, plus
 * the machine-readable quarantine report.
 *
 * Every pair a batch run admits ends in exactly one PairStatus; the
 * `batch.fault.*` counters reconcile against it (clean + degraded +
 * quarantined + interrupted = pairs admitted). Quarantined pairs carry a
 * QuarantineRecord naming the stage and reason so an operator can
 * triage a poison pair without re-running the batch.
 */
#ifndef DARWIN_FAULT_QUARANTINE_H
#define DARWIN_FAULT_QUARANTINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "fault/cancel.h"

namespace darwin::fault {

/** Terminal outcome of one batch pair. */
enum class PairStatus {
    Clean,        ///< full-parameter result
    Degraded,     ///< result from the degraded (narrow-budget) retry
    Quarantined,  ///< no result; see the QuarantineRecord
    Interrupted,  ///< run shut down before the pair finished
};

const char* pair_status_name(PairStatus status);

/** Why a pair failed an attempt (or was quarantined). */
enum class FailReason {
    None,
    WallTime,     ///< wall budget exceeded
    Cells,        ///< DP-cell budget exceeded
    HeapBytes,    ///< heap-estimate budget exceeded
    OutOfMemory,  ///< std::bad_alloc from a stage
    Injected,     ///< fault_plan.h InjectedFault
    Exception,    ///< any other std::exception from a stage
    Interrupted,  ///< external cancellation (shutdown)
};

const char* fail_reason_name(FailReason reason);

/** Map a CancelledError's reason onto the failure taxonomy. */
FailReason fail_reason_from_cancel(CancelReason reason);

/** Budget overruns earn one degraded retry; other failures do not. */
bool is_budget_overrun(FailReason reason);

/** One quarantined pair, as written to the quarantine report. */
struct QuarantineRecord {
    std::size_t pair_index = 0;
    std::string name;
    std::string stage;    ///< batch stage active at failure
    FailReason reason = FailReason::None;
    std::string message;  ///< what() of the failing exception
    std::uint32_t attempts = 0;  ///< attempts consumed (1 or 2)
    double elapsed_seconds = 0.0;
    std::uint64_t cells_charged = 0;
    std::uint64_t heap_bytes_charged = 0;
};

/** Serialize records as a JSON array (stable key order). */
std::string quarantine_report_json(
    const std::vector<QuarantineRecord>& records);

/** Write the report to a file; FatalError when the file can't be
 *  written. */
void write_quarantine_json(const std::string& path,
                           const std::vector<QuarantineRecord>& records);

}  // namespace darwin::fault

#endif  // DARWIN_FAULT_QUARANTINE_H
