/**
 * @file
 * Deterministic fault injection for chaos testing.
 *
 * A FaultPlan is a list of entries parsed from a compact spec string
 * (the `DARWIN_FAULT` environment variable or `--fault-inject`):
 *
 *     spec    := entry (';' entry)*
 *     entry   := probe ':' kind (':' key '=' value)*
 *     kind    := throw | stall | oom
 *     probe   := exact probe name, or a prefix ending in '*'
 *     keys    := pair=N    only fire for pair index N (default: any)
 *                after=N   skip the first N matching visits (default 0)
 *                count=N   fire at most N times per pair (default 1,
 *                          0 = every visit)
 *                ms=N      stall duration in milliseconds (default 50)
 *                p=F       fire with probability F per eligible visit,
 *                          decided by a deterministic hash of
 *                          (seed, probe, pair, visit)
 *                seed=N    seed for the p= hash (default 0)
 *
 * Example: `filter.tile:throw:pair=3;extend.stripe:stall:ms=100:count=0`
 * throws an InjectedFault at pair 3's first filter tile and stalls every
 * GACT-X stripe of every pair for 100 ms.
 *
 * Firing is deterministic: visit counters are kept per (entry, pair), so
 * the same plan over the same input faults the same probe visits
 * regardless of thread count or scheduling. The three kinds model the
 * three failure classes the batch engine isolates: `throw` is a stage
 * bug (InjectedFault), `oom` is an allocation failure (std::bad_alloc),
 * and `stall` is a slow/overweight pair (sleeps, so a wall budget
 * trips).
 *
 * Probes fire through fault::poll (cancel.h). Installation is global
 * (install_fault_plan); the caller keeps the plan alive until it
 * uninstalls it.
 */
#ifndef DARWIN_FAULT_FAULT_PLAN_H
#define DARWIN_FAULT_FAULT_PLAN_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/cancel.h"

namespace darwin::fault {

/** What an entry does when it fires. */
enum class FaultKind { Throw, Stall, Oom };

const char* fault_kind_name(FaultKind kind);

/** Thrown by `throw`-kind entries. */
class InjectedFault : public std::runtime_error {
  public:
    InjectedFault(std::string probe, const std::string& message)
        : std::runtime_error(message), probe_(std::move(probe))
    {
    }

    const std::string& probe() const { return probe_; }

  private:
    std::string probe_;
};

/** One parsed spec entry. */
struct FaultSpec {
    std::string probe;          ///< exact name, or prefix ending in '*'
    FaultKind kind = FaultKind::Throw;
    std::size_t pair = kNoPair; ///< kNoPair = any pair (incl. no scope)
    std::uint64_t after = 0;
    std::uint64_t count = 1;    ///< 0 = unlimited
    std::uint32_t stall_ms = 50;
    double probability = 1.0;
    std::uint64_t seed = 0;
};

/** A set of injection entries with per-(entry, pair) visit state. */
class FaultPlan {
  public:
    FaultPlan() = default;
    // The fired-count atomic is not movable; carry its value across.
    FaultPlan(FaultPlan&& other) noexcept
        : entries_(std::move(other.entries_)),
          injected_(other.injected_.load())
    {
    }
    FaultPlan&
    operator=(FaultPlan&& other) noexcept
    {
        entries_ = std::move(other.entries_);
        injected_.store(other.injected_.load());
        return *this;
    }

    /** Parse a spec string; FatalError with the offending entry on any
     *  syntax error. An empty spec parses to an empty plan. */
    static FaultPlan parse(const std::string& spec);

    /** Parse the DARWIN_FAULT environment variable (empty plan when
     *  unset). */
    static FaultPlan from_env();

    bool empty() const { return entries_.empty(); }
    std::size_t num_entries() const { return entries_.size(); }
    const std::vector<FaultSpec> specs() const;

    /** Total faults fired so far (all entries). */
    std::uint64_t injected() const;

    /**
     * Called by fault::poll for every probe visit: applies each matching
     * entry's visit bookkeeping and acts (throws InjectedFault, throws
     * std::bad_alloc, or sleeps) when one fires.
     */
    void fire(const char* probe, std::size_t pair) const;

  private:
    struct Entry {
        FaultSpec spec;
        mutable std::mutex mutex;
        /** pair index -> {visits, fires} (kNoPair buckets scopeless
         *  visits). */
        mutable std::unordered_map<std::size_t,
                                   std::pair<std::uint64_t, std::uint64_t>>
            state;
    };

    std::vector<std::unique_ptr<Entry>> entries_;
    mutable std::atomic<std::uint64_t> injected_{0};
};

/**
 * Install the process-global plan that fault::poll consults (nullptr
 * uninstalls). Not reference-counted: keep the plan alive while
 * installed.
 */
void install_fault_plan(const FaultPlan* plan);
const FaultPlan* active_fault_plan();

}  // namespace darwin::fault

#endif  // DARWIN_FAULT_FAULT_PLAN_H
