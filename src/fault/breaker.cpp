#include "fault/breaker.h"

namespace darwin::fault {

const char*
breaker_state_name(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::HalfOpen: return "half_open";
    case BreakerState::Open: return "open";
    }
    return "?";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(options)
{
    if (options_.window == 0)
        options_.window = 1;
    if (options_.min_samples == 0)
        options_.min_samples = 1;
}

void
CircuitBreaker::open_locked(Clock::time_point now)
{
    state_ = BreakerState::Open;
    open_until_ = now + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(
                                options_.cooldown_seconds));
    probe_inflight_ = false;
    outcomes_.clear();
    failures_ = 0;
    ++trips_;
}

bool
CircuitBreaker::should_degrade(Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case BreakerState::Closed:
        return false;
    case BreakerState::Open:
        if (now < open_until_)
            return true;
        // Cooldown elapsed: this caller becomes the half-open probe.
        state_ = BreakerState::HalfOpen;
        probe_inflight_ = true;
        return false;
    case BreakerState::HalfOpen:
        // One probe at a time; everyone else stays degraded until the
        // trial resolves.
        if (probe_inflight_)
            return true;
        probe_inflight_ = true;
        return false;
    }
    return false;
}

void
CircuitBreaker::record(bool failure, Clock::time_point now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    switch (state_) {
    case BreakerState::Open:
        // Straggler from before the trip; the window restarted.
        return;
    case BreakerState::HalfOpen:
        if (failure) {
            open_locked(now);
        } else {
            state_ = BreakerState::Closed;
            probe_inflight_ = false;
            outcomes_.clear();
            failures_ = 0;
        }
        return;
    case BreakerState::Closed:
        outcomes_.push_back(failure);
        if (failure)
            ++failures_;
        while (outcomes_.size() > options_.window) {
            if (outcomes_.front())
                --failures_;
            outcomes_.pop_front();
        }
        if (outcomes_.size() >= options_.min_samples &&
            static_cast<double>(failures_) >=
                options_.trip_ratio *
                    static_cast<double>(outcomes_.size()))
            open_locked(now);
        return;
    }
}

BreakerState
CircuitBreaker::state() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

std::uint64_t
CircuitBreaker::trips() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return trips_;
}

}  // namespace darwin::fault
