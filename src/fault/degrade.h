/**
 * @file
 * Degraded-mode parameter policy, shared by the batch engine and the
 * serve daemon.
 *
 * When a pair blows a budget the batch engine gives it one retry with
 * cheaper parameters before quarantining it; when the serve daemon's
 * circuit breaker is open it serves requests with the same transform
 * (see fault/breaker.h). The policy lives here — not in the scheduler
 * or the server — so a serial run with apply_degrade'd params is
 * bit-identical to either consumer's degraded attempt: the degraded
 * contract is testable outside both.
 *
 * The transform: a narrower filter band, a tighter GACT-X / ungapped
 * X-drop, a per-chunk seed-hit cap, and (opt-in; the serve breaker
 * sets it) the score-only probe pass on batch extension so dead tiles
 * never pay the traceback lattice.
 */
#ifndef DARWIN_FAULT_DEGRADE_H
#define DARWIN_FAULT_DEGRADE_H

#include <cstddef>

#include "wga/params.h"

namespace darwin::fault {

/** Knobs of the degraded mode; defaults roughly quarter the DP work. */
struct DegradePolicy {
    /** Filter band half-width divisor (floored at min_band). */
    std::size_t band_divisor = 2;
    std::size_t min_band = 8;

    /** X-drop divisor for gactx.ydrop and ungapped_xdrop (floored at
     *  min_ydrop). */
    std::size_t ydrop_divisor = 2;
    align::Score min_ydrop = 100;

    /** DsoftParams::max_hits_per_chunk for the retry (0 keeps the
     *  original). */
    std::size_t max_hits_per_chunk = 256;

    /** Force the score-only probe pass on batched extension flushes
     *  (WgaParams::force_probe_score_only) instead of waiting for the
     *  dead-tile heuristic to warm up. Output is unchanged — probing
     *  only skips traceback work for tiles whose score is dead — but
     *  live tiles pay the probe cells *plus* the full pass, so this is
     *  off for the batch retry (whose budget counts cells) and on for
     *  the serve breaker (whose enemy is wall time on dead-heavy
     *  overload work). */
    bool force_probe = false;
};

/** The degraded parameter set for one retry of `params`. */
wga::WgaParams apply_degrade(const wga::WgaParams& params,
                             const DegradePolicy& policy);

}  // namespace darwin::fault

#endif  // DARWIN_FAULT_DEGRADE_H
