#include "fault/degrade.h"

#include <algorithm>

namespace darwin::fault {

wga::WgaParams
apply_degrade(const wga::WgaParams& params, const DegradePolicy& policy)
{
    wga::WgaParams out = params;
    if (policy.band_divisor > 1) {
        out.filter_band = std::max(policy.min_band,
                                   params.filter_band / policy.band_divisor);
    }
    if (policy.ydrop_divisor > 1) {
        out.gactx.ydrop = std::max<align::Score>(
            policy.min_ydrop,
            params.gactx.ydrop /
                static_cast<align::Score>(policy.ydrop_divisor));
        out.ungapped_xdrop = std::max<align::Score>(
            policy.min_ydrop,
            params.ungapped_xdrop /
                static_cast<align::Score>(policy.ydrop_divisor));
    }
    if (policy.max_hits_per_chunk != 0) {
        out.dsoft.max_hits_per_chunk =
            params.dsoft.max_hits_per_chunk == 0
                ? policy.max_hits_per_chunk
                : std::min(params.dsoft.max_hits_per_chunk,
                           policy.max_hits_per_chunk);
    }
    if (policy.force_probe)
        out.force_probe_score_only = true;
    return out;
}

}  // namespace darwin::fault
