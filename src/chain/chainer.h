/**
 * @file
 * Chaining of local alignments (the AXTCHAIN role in the paper's
 * methodology, §II and §V-E, run with -linearGap=loose).
 *
 * Dynamic program over blocks sorted by target position: a block may
 * follow a predecessor that ends strictly before it in *both* genomes;
 * the join is charged a gap cost from the loose piecewise-linear schedule
 * (one-sided gaps use the single-gap table, two-sided gaps the bothGap
 * table). Chains are extracted best-first; each block belongs to at most
 * one chain.
 */
#ifndef DARWIN_CHAIN_CHAINER_H
#define DARWIN_CHAIN_CHAINER_H

#include <cstdint>
#include <vector>

#include "align/alignment.h"
#include "chain/anchor.h"

namespace darwin::chain {

/** Piecewise-linear gap cost schedule (axtChain "loose" by default). */
class GapCostTable {
  public:
    /**
     * @param positions Breakpoints (gap sizes), ascending, starting at 1.
     * @param single Costs at the breakpoints for one-sided gaps.
     * @param both Costs at the breakpoints for two-sided gaps.
     */
    GapCostTable(std::vector<std::uint64_t> positions,
                 std::vector<double> single, std::vector<double> both);

    /** The axtChain -linearGap=loose schedule. */
    static GapCostTable loose();

    /**
     * Cost of joining across a gap of `dt` target bases and `dq` query
     * bases (either may be zero). Zero total gap costs nothing.
     */
    double cost(std::uint64_t dt, std::uint64_t dq) const;

  private:
    double interpolate(const std::vector<double>& costs,
                       std::uint64_t gap) const;

    std::vector<std::uint64_t> positions_;
    std::vector<double> single_;
    std::vector<double> both_;
};

/** Chainer configuration. */
struct ChainParams {
    GapCostTable gap_costs = GapCostTable::loose();

    /** Joins with dt+dq beyond this are not considered. */
    std::uint64_t max_join_gap = 100'000;

    /** Chains scoring below this are dropped (axtChain minScore). */
    double min_chain_score = 1'000.0;
};

/**
 * Chain a set of alignments. Blocks overlapping in either genome are
 * never joined; each block lands in at most one chain. Returns chains
 * sorted by descending score.
 */
std::vector<Chain> chain_alignments(
    const std::vector<align::Alignment>& alignments,
    const ChainParams& params = ChainParams{});

}  // namespace darwin::chain

#endif  // DARWIN_CHAIN_CHAINER_H
