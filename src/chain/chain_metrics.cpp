#include "chain/chain_metrics.h"

#include <algorithm>

namespace darwin::chain {

ChainMetrics
summarize_chains(const std::vector<Chain>& chains, std::size_t top_k)
{
    ChainMetrics out;
    out.num_chains = chains.size();
    const std::size_t k = std::min(top_k, chains.size());
    for (std::size_t i = 0; i < chains.size(); ++i) {
        out.total_matched_bases += chains[i].matched_bases;
        if (i < k) {
            out.top_k_score += chains[i].score;
            out.top_k_matched_bases += chains[i].matched_bases;
        }
    }
    return out;
}

}  // namespace darwin::chain
