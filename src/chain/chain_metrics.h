/**
 * @file
 * Chain-level metrics used by the sensitivity evaluation (Table III).
 */
#ifndef DARWIN_CHAIN_CHAIN_METRICS_H
#define DARWIN_CHAIN_CHAIN_METRICS_H

#include <cstdint>
#include <vector>

#include "chain/anchor.h"

namespace darwin::chain {

/** Aggregates over a chain set. */
struct ChainMetrics {
    std::size_t num_chains = 0;
    /** Sum of scores of the top-k chains (k as requested). */
    double top_k_score = 0.0;
    /** Matched base-pairs across *all* chains. */
    std::uint64_t total_matched_bases = 0;
    /** Matched base-pairs across the top-k chains. */
    std::uint64_t top_k_matched_bases = 0;
};

/** Compute metrics over chains (assumed sorted by descending score). */
ChainMetrics summarize_chains(const std::vector<Chain>& chains,
                              std::size_t top_k = 10);

}  // namespace darwin::chain

#endif  // DARWIN_CHAIN_CHAIN_METRICS_H
