#include "chain/chainer.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace darwin::chain {

GapCostTable::GapCostTable(std::vector<std::uint64_t> positions,
                           std::vector<double> single,
                           std::vector<double> both)
    : positions_(std::move(positions)),
      single_(std::move(single)),
      both_(std::move(both))
{
    require(!positions_.empty() && positions_.size() == single_.size() &&
            positions_.size() == both_.size(),
            "GapCostTable: mismatched table sizes");
    require(std::is_sorted(positions_.begin(), positions_.end()),
            "GapCostTable: breakpoints must ascend");
}

GapCostTable
GapCostTable::loose()
{
    // The axtChain -linearGap=loose schedule (qGap == tGap in that file).
    return GapCostTable(
        {1, 2, 3, 11, 111, 2111, 12111, 32111, 72111, 152111, 252111},
        {325, 360, 400, 450, 600, 1100, 3600, 7600, 15600, 31600, 56600},
        {625, 660, 700, 750, 900, 1400, 4000, 8000, 16000, 32000, 57000});
}

double
GapCostTable::interpolate(const std::vector<double>& costs,
                          std::uint64_t gap) const
{
    if (gap == 0)
        return 0.0;
    if (gap <= positions_.front())
        return costs.front();
    if (gap >= positions_.back()) {
        // Extrapolate with the final segment's slope.
        const std::size_t k = positions_.size() - 1;
        const double slope =
            (costs[k] - costs[k - 1]) /
            static_cast<double>(positions_[k] - positions_[k - 1]);
        return costs[k] +
               slope * static_cast<double>(gap - positions_[k]);
    }
    const auto it =
        std::upper_bound(positions_.begin(), positions_.end(), gap);
    const std::size_t hi = static_cast<std::size_t>(
        it - positions_.begin());
    const std::size_t lo = hi - 1;
    const double frac =
        static_cast<double>(gap - positions_[lo]) /
        static_cast<double>(positions_[hi] - positions_[lo]);
    return costs[lo] + frac * (costs[hi] - costs[lo]);
}

double
GapCostTable::cost(std::uint64_t dt, std::uint64_t dq) const
{
    if (dt == 0 && dq == 0)
        return 0.0;
    if (dt == 0)
        return interpolate(single_, dq);
    if (dq == 0)
        return interpolate(single_, dt);
    return interpolate(both_, dt + dq);
}

std::vector<Chain>
chain_alignments(const std::vector<align::Alignment>& alignments,
                 const ChainParams& params)
{
    const std::size_t n = alignments.size();
    if (n == 0)
        return {};

    // Sort block indices by target start (ties by query start).
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const auto& x = alignments[a];
        const auto& y = alignments[b];
        if (x.target_start != y.target_start)
            return x.target_start < y.target_start;
        return x.query_start < y.query_start;
    });

    std::vector<double> dp(n, 0.0);
    std::vector<std::ptrdiff_t> back(n, -1);

    // Cost of joining predecessor `bi` before `bj`, or a negative value
    // when the pair cannot be joined. Bounded overlap at the seam is
    // tolerated (independently extended neighbors overrun each other
    // slightly); overlapped bases are charged at block j's score density
    // so joining never profits from double-covered sequence.
    const auto join_cost = [&params](const align::Alignment& bi,
                                     const align::Alignment& bj) -> double {
        if (bi.query_strand != bj.query_strand)
            return -1.0;
        if (bi.target_start >= bj.target_start ||
            bi.query_start >= bj.query_start ||
            bi.target_end >= bj.target_end || bi.query_end >= bj.query_end)
            return -1.0;
        const std::int64_t ot = static_cast<std::int64_t>(bi.target_end) -
                                static_cast<std::int64_t>(bj.target_start);
        const std::int64_t oq = static_cast<std::int64_t>(bi.query_end) -
                                static_cast<std::int64_t>(bj.query_start);
        const std::uint64_t shorter =
            std::min(std::min(bi.target_span(), bj.target_span()),
                     std::min(bi.query_span(), bj.query_span()));
        if (ot * 2 >= static_cast<std::int64_t>(shorter) ||
            oq * 2 >= static_cast<std::int64_t>(shorter))
            return -1.0;
        const std::uint64_t dt =
            ot > 0 ? 0 : static_cast<std::uint64_t>(-ot);
        const std::uint64_t dq =
            oq > 0 ? 0 : static_cast<std::uint64_t>(-oq);
        if (dt > params.max_join_gap && dq > params.max_join_gap)
            return -1.0;
        if (dt + dq > 2 * params.max_join_gap)
            return -1.0;
        const std::uint64_t overlap_bp =
            static_cast<std::uint64_t>(std::max<std::int64_t>(ot, 0)) +
            static_cast<std::uint64_t>(std::max<std::int64_t>(oq, 0));
        const double overlap_penalty =
            overlap_bp > 0
                ? static_cast<double>(overlap_bp) *
                      static_cast<double>(bj.score) /
                      static_cast<double>(
                          std::max<std::uint64_t>(bj.target_span(), 1))
                : 0.0;
        return params.gap_costs.cost(dt, dq) + overlap_penalty;
    };

    for (std::size_t oj = 0; oj < n; ++oj) {
        const std::size_t j = order[oj];
        const auto& bj = alignments[j];
        dp[j] = static_cast<double>(bj.score);
        back[j] = -1;
        // Scan predecessors backwards; once target gaps exceed the join
        // bound no earlier block can qualify either (sorted by start, so
        // this is a heuristic cut consistent with max_join_gap on ends).
        for (std::size_t oi = oj; oi-- > 0;) {
            const std::size_t i = order[oi];
            const auto& bi = alignments[i];
            const double cost = join_cost(bi, bj);
            if (cost < 0.0)
                continue;
            const double cand =
                dp[i] + static_cast<double>(bj.score) - cost;
            if (cand > dp[j]) {
                dp[j] = cand;
                back[j] = static_cast<std::ptrdiff_t>(i);
            }
            // Early exit: blocks starting far before cannot be joined.
            if (bj.target_start > bi.target_start &&
                bj.target_start - bi.target_start >
                    4 * params.max_join_gap)
                break;
        }
    }

    // Best-first extraction; each block is used at most once. When a
    // backtrack runs into a used block, the chain is truncated there and
    // its score becomes the standalone score of the kept suffix.
    std::vector<bool> used(n, false);
    std::vector<std::size_t> by_score(n);
    std::iota(by_score.begin(), by_score.end(), 0);
    std::sort(by_score.begin(), by_score.end(),
              [&](std::size_t a, std::size_t b) { return dp[a] > dp[b]; });

    std::vector<Chain> chains;
    for (const std::size_t head : by_score) {
        if (used[head])
            continue;
        Chain chain;
        double suffix_base = 0.0;  // dp at the truncation point
        std::ptrdiff_t cur = static_cast<std::ptrdiff_t>(head);
        std::ptrdiff_t last_kept = -1;
        while (cur >= 0) {
            const auto c = static_cast<std::size_t>(cur);
            if (used[c]) {
                // Truncate: subtract the used prefix's dp and refund the
                // join cost into it.
                require(last_kept >= 0, "chainer: head already used");
                const auto& prev = alignments[c];
                const auto& kept =
                    alignments[static_cast<std::size_t>(last_kept)];
                const double cost = join_cost(prev, kept);
                suffix_base = dp[c] - std::max(cost, 0.0);
                break;
            }
            used[c] = true;
            chain.members.push_back(c);
            last_kept = cur;
            cur = back[c];
        }
        std::reverse(chain.members.begin(), chain.members.end());
        chain.score = dp[head] - suffix_base;
        if (chain.score < params.min_chain_score || chain.empty())
            continue;

        const auto& first = alignments[chain.members.front()];
        const auto& last = alignments[chain.members.back()];
        chain.target_start = first.target_start;
        chain.target_end = last.target_end;
        chain.query_start = first.query_start;
        chain.query_end = last.query_end;
        for (const std::size_t idx : chain.members)
            chain.matched_bases += alignments[idx].matched_bases();
        chains.push_back(std::move(chain));
    }

    std::sort(chains.begin(), chains.end(),
              [](const Chain& a, const Chain& b) { return a.score > b.score; });
    return chains;
}

}  // namespace darwin::chain
