/**
 * @file
 * Chain data model.
 *
 * A chain (Kent et al., "Evolution's cauldron") is a maximally-scoring
 * ordered sequence of local alignments that are collinear in both
 * genomes, possibly separated by large one- or two-sided gaps. Chains are
 * the unit over which the paper measures sensitivity (top-10 chain
 * scores, matched base-pairs in all chains, exon coverage).
 */
#ifndef DARWIN_CHAIN_ANCHOR_H
#define DARWIN_CHAIN_ANCHOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "align/alignment.h"

namespace darwin::chain {

/** A chain over a set of alignments (blocks). */
struct Chain {
    /** Indices into the alignment vector handed to the chainer, ordered
     *  by target position. */
    std::vector<std::size_t> members;

    /** Chain score: block scores minus inter-block gap costs. */
    double score = 0.0;

    /** Footprint in both genomes. */
    std::uint64_t target_start = 0;
    std::uint64_t target_end = 0;
    std::uint64_t query_start = 0;
    std::uint64_t query_end = 0;

    /** Sum of exact-match bases over member blocks. */
    std::uint64_t matched_bases = 0;

    std::size_t size() const { return members.size(); }
    bool empty() const { return members.empty(); }
};

/** Summarize a chain for logs. */
std::string chain_summary(const Chain& chain);

}  // namespace darwin::chain

#endif  // DARWIN_CHAIN_ANCHOR_H
