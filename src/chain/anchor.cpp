#include "chain/anchor.h"

#include "util/strings.h"

namespace darwin::chain {

std::string
chain_summary(const Chain& chain)
{
    return strprintf(
        "chain blocks=%zu score=%.0f t[%llu,%llu) q[%llu,%llu) match=%llu",
        chain.size(), chain.score,
        static_cast<unsigned long long>(chain.target_start),
        static_cast<unsigned long long>(chain.target_end),
        static_cast<unsigned long long>(chain.query_start),
        static_cast<unsigned long long>(chain.query_end),
        static_cast<unsigned long long>(chain.matched_bases));
}

}  // namespace darwin::chain
