#include "obs/progress.h"

#include <chrono>

#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace darwin::obs {

ProgressReporter::ProgressReporter(const MetricsRegistry& registry,
                                   ProgressOptions options)
    : registry_(registry), options_(std::move(options))
{
}

ProgressReporter::~ProgressReporter()
{
    stop();
}

void
ProgressReporter::start()
{
    if (options_.interval_seconds <= 0.0 || thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void
ProgressReporter::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
ProgressReporter::loop()
{
    Timer run_timer;
    Timer interval_timer;
    std::uint64_t last_done = 0;
    const auto interval = std::chrono::duration<double>(
        options_.interval_seconds);
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (stop_cv_.wait_for(lock, interval,
                                  [this] { return stopping_; }))
                break;
        }
        heartbeats_fired_ = true;
        report(run_timer.seconds(), last_done, interval_timer.seconds());
        interval_timer.reset();
        if (const Counter* done =
                registry_.find_counter(options_.done_counter))
            last_done = done->value();
    }
    // Final summary so interrupted runs still record their throughput.
    if (heartbeats_fired_)
        report(run_timer.seconds(), last_done, interval_timer.seconds());
}

void
ProgressReporter::report(double elapsed_seconds, std::uint64_t last_done,
                         double since_last_seconds)
{
    std::uint64_t done = 0;
    if (const Counter* counter =
            registry_.find_counter(options_.done_counter))
        done = counter->value();

    std::vector<LogField> fields;
    fields.push_back({"elapsed_s", strprintf("%.1f", elapsed_seconds)});
    std::string headline = strprintf("%s: %llu done",
                                     options_.label.c_str(),
                                     static_cast<unsigned long long>(done));
    if (const Counter* total =
            registry_.find_counter(options_.total_counter)) {
        headline = strprintf("%s: %llu/%llu done", options_.label.c_str(),
                             static_cast<unsigned long long>(done),
                             static_cast<unsigned long long>(
                                 total->value()));
        fields.push_back({"total", std::to_string(total->value())});
    }
    fields.push_back({"done", std::to_string(done)});
    if (since_last_seconds > 0.0 && done >= last_done) {
        fields.push_back(
            {"rate_per_s",
             strprintf("%.2f", static_cast<double>(done - last_done) /
                                   since_last_seconds)});
    }
    if (!options_.queue_gauge_prefix.empty()) {
        for (const auto& [name, value] :
             registry_.gauge_snapshot(options_.queue_gauge_prefix)) {
            // Report under the leaf name: "batch.queue.seed.depth" with
            // prefix "batch.queue." logs as queue field "seed.depth".
            fields.push_back(
                {name.substr(options_.queue_gauge_prefix.size()),
                 std::to_string(value)});
        }
    }
    inform(headline, std::move(fields));
}

}  // namespace darwin::obs
