/**
 * @file
 * Heartbeat progress reporting for long runs: a background thread wakes
 * every interval, reads the metrics registry, and logs one structured
 * line — work done / total, instantaneous throughput, and current queue
 * depths — so an operator watching a multi-hour batch sees movement
 * without attaching a tracer.
 *
 * The reporter only *reads* (via the registry's find/snapshot
 * accessors), so it never creates metrics and never perturbs what the
 * final dump contains.
 */
#ifndef DARWIN_OBS_PROGRESS_H
#define DARWIN_OBS_PROGRESS_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace darwin::obs {

/** What the reporter reads and how often it speaks. */
struct ProgressOptions {
    /** Seconds between heartbeats; values <= 0 disable the reporter. */
    double interval_seconds = 10.0;

    /** Counter of completed work units (e.g. "batch.pairs_completed"). */
    std::string done_counter;

    /** Counter of total expected units ("batch.pairs"); may be empty. */
    std::string total_counter;

    /** Gauges with this prefix are printed as queue depths. */
    std::string queue_gauge_prefix;

    /** Label for the log line, e.g. "batch" or "align". */
    std::string label = "progress";
};

/**
 * Interval-driven heartbeat over a registry. start() spawns the
 * reporting thread; stop() (or destruction) joins it promptly. A final
 * summary line is emitted on stop() if at least one heartbeat fired,
 * so truncated runs still leave a throughput record.
 */
class ProgressReporter {
  public:
    ProgressReporter(const MetricsRegistry& registry,
                     ProgressOptions options);
    ~ProgressReporter();

    ProgressReporter(const ProgressReporter&) = delete;
    ProgressReporter& operator=(const ProgressReporter&) = delete;

    /** Begin heartbeats; no-op when the interval disables reporting. */
    void start();

    /** Stop and join the reporter thread (idempotent). */
    void stop();

  private:
    void loop();
    void report(double elapsed_seconds, std::uint64_t last_done,
                double since_last_seconds);

    const MetricsRegistry& registry_;
    ProgressOptions options_;
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable stop_cv_;
    bool stopping_ = false;
    bool heartbeats_fired_ = false;
};

}  // namespace darwin::obs

#endif  // DARWIN_OBS_PROGRESS_H
