/**
 * @file
 * Prometheus text exposition (format 0.0.4) for the metrics registry.
 *
 * Renders a MetricsSnapshot — counters, gauges, histograms — as the
 * plain-text scrape format Prometheus and compatible collectors ingest:
 *
 *   # TYPE serve_requests_total counter
 *   serve_requests_total 42
 *   # TYPE serve_queue_depth gauge
 *   serve_queue_depth 3
 *   # TYPE serve_request_seconds histogram
 *   serve_request_seconds_bucket{le="0.001024"} 17
 *   serve_request_seconds_bucket{le="+Inf"} 42
 *   serve_request_seconds_sum 1.25
 *   serve_request_seconds_count 42
 *
 * The registry's dotted metric names ("serve.request.seconds") are
 * sanitized to the Prometheus grammar (dots and any other invalid
 * character become underscores; a leading digit gains a '_' prefix).
 * Counters gain the conventional `_total` suffix; every gauge also
 * exports a `<name>_high_water` companion series. Histogram buckets are
 * the fixed log-spaced cumulative grid from obs::Histogram, rendered
 * sparsely (bounds where the cumulative count changed, plus the
 * mandatory `+Inf` bucket, which always equals `_count`).
 *
 * Rendering works from one consistent snapshot, so `_sum`, `_count`,
 * and the buckets of a histogram always agree with each other even
 * when writers are observing concurrently — and the same snapshot can
 * be rendered as JSON (Op::Stats) and as Prometheus text (/metrics)
 * without the two disagreeing.
 */
#ifndef DARWIN_OBS_EXPOSITION_H
#define DARWIN_OBS_EXPOSITION_H

#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace darwin::obs {

/**
 * Map an internal metric name onto the Prometheus name grammar
 * [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid character (notably the '.'
 * separators and '-') becomes '_', and a leading digit gains a '_'
 * prefix. An empty name becomes "_".
 */
std::string sanitize_metric_name(const std::string& name);

/**
 * Escape a string for use inside a label value: backslash, double
 * quote, and newline become \\, \", and \n.
 */
std::string escape_label_value(const std::string& value);

/** Render the snapshot as Prometheus text exposition. */
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);

/** Snapshot the registry and render it (convenience for scrape paths). */
std::string to_prometheus(const MetricsRegistry& metrics);

}  // namespace darwin::obs

#endif  // DARWIN_OBS_EXPOSITION_H
