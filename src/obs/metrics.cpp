#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace darwin::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/** Index of the first bucket whose bound is >= value. */
std::size_t
bucket_index(double value)
{
    for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
        if (value <= Histogram::bucket_bound(i))
            return i;
    }
    return Histogram::kNumBuckets - 1;  // +Inf bucket
}

/** Quantile over an unsorted copy of the samples (NaN when empty). */
double
sample_quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return kNaN;
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double
Histogram::bucket_bound(std::size_t i)
{
    if (i + 1 >= kNumBuckets)
        return std::numeric_limits<double>::infinity();
    return 1e-6 * static_cast<double>(std::uint64_t{1} << i);
}

void
Histogram::observe(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!std::isfinite(value)) {
        ++nonfinite_;
        return;
    }
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    ++buckets_[bucket_index(value)];
    if (samples_.size() < kMaxSamples)
        samples_.push_back(value);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? kNaN : min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? kNaN : max_;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sample_quantile(samples_, q);
}

HistogramSnapshot
Histogram::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    HistogramSnapshot snap;
    snap.count = count_;
    snap.nonfinite = nonfinite_;
    snap.sum = sum_;
    snap.min = count_ == 0 ? kNaN : min_;
    snap.max = count_ == 0 ? kNaN : max_;
    snap.p50 = sample_quantile(samples_, 0.50);
    snap.p90 = sample_quantile(samples_, 0.90);
    snap.p99 = sample_quantile(samples_, 0.99);
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        running += buckets_[i];
        snap.buckets[i] = running;
    }
    return snap;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = 0;
    nonfinite_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    buckets_.fill(0);
    samples_.clear();
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter*
MetricsRegistry::find_counter(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge*
MetricsRegistry::find_gauge(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram*
MetricsRegistry::find_histogram(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauge_snapshot(const std::string& prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::int64_t>> out;
    for (const auto& [name, metric] : gauges_) {
        if (starts_with(name, prefix))
            out.emplace_back(name, metric->value());
    }
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& [name, metric] : counters_)
        snap.counters.emplace_back(name, metric->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, metric] : gauges_) {
        // Read high_water before value: set() writes value first, so
        // this order can never observe a high-water below the value.
        GaugeSnapshot g;
        g.high_water = metric->high_water();
        g.value = metric->value();
        g.high_water = std::max(g.high_water, g.value);
        snap.gauges.emplace_back(name, g);
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, metric] : histograms_)
        snap.histograms.emplace_back(name, metric->snapshot());
    return snap;
}

namespace {

/** Render a double as JSON; non-finite values become null. */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "null";
    return strprintf("%.9g", v);
}

/** Bucket bound as a Prometheus-style le label ("+inf" for the last). */
std::string
bound_label(std::size_t i)
{
    if (i + 1 >= Histogram::kNumBuckets)
        return "+inf";
    return strprintf("%.9g", Histogram::bucket_bound(i));
}

}  // namespace

void
write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                    bool pretty)
{
    // The pretty form is the historical dump layout (metrics files,
    // --metrics-out); the compact form drops every newline and indent
    // so the object can ride in a line-delimited protocol.
    const char* nl = pretty ? "\n" : "";
    const char* pad4 = pretty ? "    " : "";
    const char* pad2 = pretty ? "  " : "";
    out << "{" << nl << pad2 << "\"counters\": {";
    bool first = true;
    for (const auto& [name, value] : snapshot.counters) {
        out << (first ? "" : ",") << nl << pad4 << "\"" << name
            << "\": " << value;
        first = false;
    }
    out << (snapshot.counters.empty() ? "" : nl)
        << (snapshot.counters.empty() ? "" : pad2) << "}," << nl << pad2
        << "\"gauges\": {";
    first = true;
    for (const auto& [name, g] : snapshot.gauges) {
        out << (first ? "" : ",") << nl << pad4 << "\"" << name
            << "\": {\"value\": " << g.value
            << ", \"high_water\": " << g.high_water << "}";
        first = false;
    }
    out << (snapshot.gauges.empty() ? "" : nl)
        << (snapshot.gauges.empty() ? "" : pad2) << "}," << nl << pad2
        << "\"histograms\": {";
    first = true;
    for (const auto& [name, h] : snapshot.histograms) {
        out << (first ? "" : ",") << nl << pad4 << "\"" << name << "\": {"
            << "\"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
            << ", \"mean\": " << json_number(h.mean())
            << ", \"min\": " << json_number(h.min)
            << ", \"max\": " << json_number(h.max)
            << ", \"p50\": " << json_number(h.p50)
            << ", \"p90\": " << json_number(h.p90)
            << ", \"p99\": " << json_number(h.p99);
        if (h.nonfinite != 0)
            out << ", \"nonfinite\": " << h.nonfinite;
        out << ", \"buckets\": {";
        bool first_bucket = true;
        std::uint64_t prev = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            // Sparse: only buckets that gained observations, plus the
            // final +inf bucket (== count) so cumulativity is checkable.
            if (h.buckets[i] == prev && i + 1 < h.buckets.size())
                continue;
            out << (first_bucket ? "" : ", ") << "\"" << bound_label(i)
                << "\": " << h.buckets[i];
            first_bucket = false;
            prev = h.buckets[i];
        }
        out << "}}";
        first = false;
    }
    out << (snapshot.histograms.empty() ? "" : nl)
        << (snapshot.histograms.empty() ? "" : pad2) << "}" << nl << "}"
        << (pretty ? "\n" : "");
}

void
MetricsRegistry::write_json(std::ostream& out) const
{
    write_snapshot_json(out, snapshot(), /*pretty=*/true);
}

std::string
MetricsRegistry::to_json() const
{
    std::ostringstream out;
    write_json(out);
    return out.str();
}

std::string
MetricsRegistry::to_json_compact() const
{
    std::ostringstream out;
    write_snapshot_json(out, snapshot(), /*pretty=*/false);
    return out.str();
}

}  // namespace darwin::obs
