#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace darwin::obs {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

void
Histogram::observe(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
    if (samples_.size() < kMaxSamples)
        samples_.push_back(value);
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? kNaN : min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ == 0 ? kNaN : max_;
}

double
Histogram::quantile(double q) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (samples_.empty())
        return kNaN;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter*
MetricsRegistry::find_counter(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge*
MetricsRegistry::find_gauge(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram*
MetricsRegistry::find_histogram(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::gauge_snapshot(const std::string& prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, std::int64_t>> out;
    for (const auto& [name, metric] : gauges_) {
        if (starts_with(name, prefix))
            out.emplace_back(name, metric->value());
    }
    return out;
}

namespace {

/** Render a double as JSON; non-finite values become null. */
std::string
json_number(double v)
{
    if (!std::isfinite(v))
        return "null";
    return strprintf("%.9g", v);
}

}  // namespace

void
MetricsRegistry::write_json(std::ostream& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, metric] : counters_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << metric->value();
        first = false;
    }
    out << (counters_.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, metric] : gauges_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": {\"value\": " << metric->value()
            << ", \"high_water\": " << metric->high_water() << "}";
        first = false;
    }
    out << (gauges_.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, metric] : histograms_) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": {"
            << "\"count\": " << metric->count()
            << ", \"sum\": " << json_number(metric->sum())
            << ", \"mean\": " << json_number(metric->mean())
            << ", \"min\": " << json_number(metric->min())
            << ", \"max\": " << json_number(metric->max())
            << ", \"p50\": " << json_number(metric->quantile(0.50))
            << ", \"p90\": " << json_number(metric->quantile(0.90))
            << ", \"p99\": " << json_number(metric->quantile(0.99)) << "}";
        first = false;
    }
    out << (histograms_.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string
MetricsRegistry::to_json() const
{
    std::ostringstream out;
    write_json(out);
    return out.str();
}

}  // namespace darwin::obs
