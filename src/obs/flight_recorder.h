/**
 * @file
 * Flight recorder: a TraceSession whose storage is a bounded ring of
 * the most recent spans instead of an unbounded append log.
 *
 * A long-lived daemon cannot afford the base TraceSession (memory grows
 * with uptime) and usually learns that a request was anomalous *after*
 * it completed — too late to pre-arm --trace-out. The flight recorder
 * inverts that: it is always on at a fixed memory cost, continuously
 * overwriting the oldest spans, and the last N spans can be dumped on
 * demand (serve `dump_trace` request, SIGUSR1) as a valid Chrome trace
 * for chrome://tracing / ui.perfetto.dev.
 *
 * Recording is lock-light: a span claims its ring slot with one atomic
 * fetch_add, then moves its event into the slot under a per-slot mutex
 * (contention only when a writer laps a concurrent snapshot or another
 * writer on the same slot, i.e. never in steady state with capacity >>
 * thread count). dropped() counts spans that have been overwritten.
 *
 * snapshot() returns the retained spans oldest-first, re-sorted by
 * start timestamp so a dump taken mid-overwrite still renders sanely.
 */
#ifndef DARWIN_OBS_FLIGHT_RECORDER_H
#define DARWIN_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace darwin::obs {

class FlightRecorder : public TraceSession {
  public:
    /** Retain at most `capacity` spans (>= 1; smaller values clamp). */
    explicit FlightRecorder(std::size_t capacity);

    void record(TraceEvent event) override;

    /** The retained spans, oldest-first by start timestamp. */
    std::vector<TraceEvent> snapshot() const override;

    std::size_t
    capacity() const
    {
        return slots_.size();
    }

    /** Spans recorded over the recorder's lifetime. */
    std::uint64_t recorded() const;

    /** Spans lost to ring overwrite (recorded() - retained). */
    std::uint64_t dropped() const;

  private:
    struct Slot {
        std::mutex mutex;
        bool filled = false;
        TraceEvent event;
    };

    std::atomic<std::uint64_t> head_{0};  // next sequence number
    std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace darwin::obs

#endif  // DARWIN_OBS_FLIGHT_RECORDER_H
