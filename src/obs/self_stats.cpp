#include "obs/self_stats.h"

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <dirent.h>

namespace darwin::obs {

namespace {

/** Count directory entries under a /proc/self subdirectory (0 if unreadable). */
std::int64_t
count_dir_entries(const char* path)
{
    DIR* dir = ::opendir(path);
    if (dir == nullptr)
        return 0;
    std::int64_t n = 0;
    while (const dirent* entry = ::readdir(dir)) {
        const char* name = entry->d_name;
        if (name[0] == '.' &&
            (name[1] == '\0' || (name[1] == '.' && name[2] == '\0')))
            continue;
        ++n;
    }
    ::closedir(dir);
    return n;
}

}  // namespace

ProcSample
sample_proc()
{
    ProcSample sample;

    // statm: first field is total program size, second resident, both
    // in pages.
    std::ifstream statm("/proc/self/statm");
    long long size_pages = 0, resident_pages = 0;
    if (!(statm >> size_pages >> resident_pages))
        return sample;  // no /proc: report ok == false
    sample.rss_bytes =
        static_cast<std::int64_t>(resident_pages) * ::sysconf(_SC_PAGESIZE);

    // stat: utime and stime are fields 14 and 15, but the comm field
    // (2) may itself contain spaces and parentheses, so parse from the
    // *last* ')' — utime/stime are then whitespace tokens 11 and 12.
    std::ifstream stat("/proc/self/stat");
    std::string line;
    std::getline(stat, line);
    const std::size_t close = line.rfind(')');
    if (close != std::string::npos) {
        std::istringstream rest(line.substr(close + 1));
        std::string token;
        long long utime = 0, stime = 0;
        for (int field = 3; field <= 15 && (rest >> token); ++field) {
            if (field == 14)
                utime = std::atoll(token.c_str());
            else if (field == 15)
                stime = std::atoll(token.c_str());
        }
        const double ticks_per_second =
            static_cast<double>(::sysconf(_SC_CLK_TCK));
        if (ticks_per_second > 0) {
            sample.cpu_seconds =
                static_cast<double>(utime + stime) / ticks_per_second;
        }
    }

    sample.fds = count_dir_entries("/proc/self/fd");
    sample.threads = count_dir_entries("/proc/self/task");
    sample.ok = true;
    return sample;
}

SelfMonitor::SelfMonitor(MetricsRegistry& metrics, double interval_seconds,
                         std::function<void()> extra_sampler)
    : metrics_(metrics), extra_sampler_(std::move(extra_sampler))
{
    sample_once();
    const auto interval = std::chrono::duration<double>(
        interval_seconds > 0 ? interval_seconds : 1.0);
    thread_ = std::thread([this, interval] {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stopping_) {
            if (cv_.wait_for(lock, interval, [this] { return stopping_; }))
                break;
            lock.unlock();
            sample_once();
            lock.lock();
        }
    });
}

SelfMonitor::~SelfMonitor()
{
    stop();
}

void
SelfMonitor::sample_once()
{
    const ProcSample sample = sample_proc();
    if (sample.ok) {
        metrics_.gauge("proc.rss_bytes").set(sample.rss_bytes);
        metrics_.gauge("proc.cpu_seconds")
            .set(static_cast<std::int64_t>(std::llround(sample.cpu_seconds)));
        metrics_.gauge("proc.cpu_millis")
            .set(static_cast<std::int64_t>(
                std::llround(sample.cpu_seconds * 1000.0)));
        metrics_.gauge("proc.fds").set(sample.fds);
        metrics_.gauge("proc.threads").set(sample.threads);
    }
    if (extra_sampler_)
        extra_sampler_();
}

void
SelfMonitor::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;  // a previous stop() already owns the join
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

}  // namespace darwin::obs
