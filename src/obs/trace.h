/**
 * @file
 * Stage tracing: a thread-safe span recorder that serializes to the
 * Chrome/Perfetto `trace_event` JSON format, so loading the file in
 * chrome://tracing or ui.perfetto.dev shows the seed -> filter -> extend
 * dataflow per worker thread over time.
 *
 * Usage has two forms:
 *  - RAII, for synchronous scopes:
 *        obs::ScopedSpan span("filter", "batch");
 *        span.arg("pair", pair_index);
 *  - explicit begin/end, for async stages whose lifetime does not match
 *    a C++ scope:
 *        auto span = obs::ManualSpan::begin("extend", "batch");
 *        ...
 *        span.end();
 *
 * Both record into the *installed* session (TraceSession::install) and
 * are no-ops when none is installed, so instrumentation can live in
 * library code unconditionally: when the user did not pass --trace-out,
 * the cost is one relaxed atomic load per span. Span timestamps are
 * microseconds from the session epoch; thread attribution uses the
 * process-wide small thread index (util/logging.h) that the structured
 * logger also reports, so log lines and trace rows correlate.
 */
#ifndef DARWIN_OBS_TRACE_H
#define DARWIN_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace darwin::obs {

/** One numeric span annotation (JSON "args" entry). */
struct TraceArg {
    std::string key;
    std::int64_t value = 0;
};

/** A completed span. */
struct TraceEvent {
    std::string name;      ///< e.g. "seed"
    std::string category;  ///< e.g. "batch", "wga"
    std::uint32_t tid = 0; ///< small per-thread index (begin thread)
    std::int64_t start_us = 0;
    std::int64_t duration_us = 0;
    std::vector<TraceArg> args;
};

/**
 * Span collector for one run. All methods are thread-safe.
 *
 * record() and snapshot() are virtual so alternative sinks can reuse
 * the span plumbing and the Chrome serialization: the base class keeps
 * every span for the whole run (the --trace-out whole-session dump),
 * while FlightRecorder (obs/flight_recorder.h) retains only a bounded
 * ring of the most recent spans for on-demand dumps from a long-lived
 * daemon.
 */
class TraceSession {
  public:
    /** The epoch (time zero of span timestamps) is construction time. */
    TraceSession();
    virtual ~TraceSession() = default;

    /** Microseconds elapsed since the session epoch. */
    std::int64_t now_us() const;

    /** Append a completed span. */
    virtual void record(TraceEvent event);

    /** Copy of the spans recorded so far, in record order. */
    virtual std::vector<TraceEvent> snapshot() const;

    /**
     * Serialize as `{"displayTimeUnit": "ms", "traceEvents": [...]}`:
     * one thread_name metadata record per thread seen, then every span
     * as a complete ("ph":"X") event with ts/dur in microseconds.
     */
    void write_chrome_json(std::ostream& out) const;
    std::string to_json() const;

    /**
     * Install the process-global session that ScopedSpan / ManualSpan
     * default to (nullptr uninstalls). Not reference-counted: the caller
     * keeps the session alive until after uninstalling.
     */
    static void install(TraceSession* session);
    static TraceSession* current();

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * A span begun explicitly and ended with end() — possibly on another
 * thread (attribution stays with the begin thread). Movable, inert when
 * default-constructed or when no session is installed.
 */
class ManualSpan {
  public:
    ManualSpan() = default;
    ManualSpan(ManualSpan&& other) noexcept;
    ManualSpan& operator=(ManualSpan&& other) noexcept;
    ManualSpan(const ManualSpan&) = delete;
    ManualSpan& operator=(const ManualSpan&) = delete;

    /** Begin on the installed session (inert if none). */
    static ManualSpan begin(const char* name, const char* category);

    /** Begin on an explicit session (inert if nullptr). */
    static ManualSpan begin(TraceSession* session, const char* name,
                            const char* category);

    /** Attach a numeric annotation (no-op when inert). */
    void arg(const char* key, std::int64_t value);

    /** Record the span; further end() calls are no-ops. */
    void end();

    /** Ends the span if still open. */
    ~ManualSpan();

  private:
    TraceSession* session_ = nullptr;
    TraceEvent event_;
};

/** RAII span: begins at construction, records at scope exit. */
class ScopedSpan {
  public:
    ScopedSpan(const char* name, const char* category)
        : span_(ManualSpan::begin(name, category))
    {
    }

    ScopedSpan(TraceSession* session, const char* name, const char* category)
        : span_(ManualSpan::begin(session, name, category))
    {
    }

    void
    arg(const char* key, std::int64_t value)
    {
        span_.arg(key, value);
    }

  private:
    ManualSpan span_;
};

/**
 * Per-request attribution scope. While a RequestTag is alive on a
 * thread, every span *begun* on that thread automatically carries a
 * {"req": id} arg, so a request's seed/filter/extend spans can be
 * grouped in the trace without threading the id through every call
 * signature. Tags nest (the innermost wins) and are strictly
 * thread-local: the serve daemon runs a request's whole pipeline on
 * one worker thread, so one tag in the request handler covers every
 * stage span beneath it.
 */
class RequestTag {
  public:
    explicit RequestTag(std::int64_t request_id);
    ~RequestTag();
    RequestTag(const RequestTag&) = delete;
    RequestTag& operator=(const RequestTag&) = delete;

    /** Innermost active id on this thread, or -1 when untagged. */
    static std::int64_t current();

  private:
    std::int64_t previous_;
};

/**
 * Parse a trace produced by write_chrome_json back into spans (metadata
 * records are skipped). Understands the subset of JSON the writer emits;
 * throws FatalError on malformed input. Used by tests and by external
 * tooling that post-processes traces.
 */
std::vector<TraceEvent> parse_trace_events(const std::string& json);

}  // namespace darwin::obs

#endif  // DARWIN_OBS_TRACE_H
