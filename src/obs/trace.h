/**
 * @file
 * Stage tracing: a thread-safe span recorder that serializes to the
 * Chrome/Perfetto `trace_event` JSON format, so loading the file in
 * chrome://tracing or ui.perfetto.dev shows the seed -> filter -> extend
 * dataflow per worker thread over time.
 *
 * Usage has two forms:
 *  - RAII, for synchronous scopes:
 *        obs::ScopedSpan span("filter", "batch");
 *        span.arg("pair", pair_index);
 *  - explicit begin/end, for async stages whose lifetime does not match
 *    a C++ scope:
 *        auto span = obs::ManualSpan::begin("extend", "batch");
 *        ...
 *        span.end();
 *
 * Both record into the *installed* session (TraceSession::install) and
 * are no-ops when none is installed, so instrumentation can live in
 * library code unconditionally: when the user did not pass --trace-out,
 * the cost is one relaxed atomic load per span. Span timestamps are
 * microseconds from the session epoch; thread attribution uses the
 * process-wide small thread index (util/logging.h) that the structured
 * logger also reports, so log lines and trace rows correlate.
 */
#ifndef DARWIN_OBS_TRACE_H
#define DARWIN_OBS_TRACE_H

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace darwin::obs {

/** One numeric span annotation (JSON "args" entry). */
struct TraceArg {
    std::string key;
    std::int64_t value = 0;
};

/** A completed span. */
struct TraceEvent {
    std::string name;      ///< e.g. "seed"
    std::string category;  ///< e.g. "batch", "wga"
    std::uint32_t tid = 0; ///< small per-thread index (begin thread)
    std::int64_t start_us = 0;
    std::int64_t duration_us = 0;
    std::vector<TraceArg> args;
};

/** Span collector for one run. All methods are thread-safe. */
class TraceSession {
  public:
    /** The epoch (time zero of span timestamps) is construction time. */
    TraceSession();

    /** Microseconds elapsed since the session epoch. */
    std::int64_t now_us() const;

    /** Append a completed span. */
    void record(TraceEvent event);

    /** Copy of the spans recorded so far, in record order. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Serialize as `{"displayTimeUnit": "ms", "traceEvents": [...]}`:
     * one thread_name metadata record per thread seen, then every span
     * as a complete ("ph":"X") event with ts/dur in microseconds.
     */
    void write_chrome_json(std::ostream& out) const;
    std::string to_json() const;

    /**
     * Install the process-global session that ScopedSpan / ManualSpan
     * default to (nullptr uninstalls). Not reference-counted: the caller
     * keeps the session alive until after uninstalling.
     */
    static void install(TraceSession* session);
    static TraceSession* current();

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * A span begun explicitly and ended with end() — possibly on another
 * thread (attribution stays with the begin thread). Movable, inert when
 * default-constructed or when no session is installed.
 */
class ManualSpan {
  public:
    ManualSpan() = default;
    ManualSpan(ManualSpan&& other) noexcept;
    ManualSpan& operator=(ManualSpan&& other) noexcept;
    ManualSpan(const ManualSpan&) = delete;
    ManualSpan& operator=(const ManualSpan&) = delete;

    /** Begin on the installed session (inert if none). */
    static ManualSpan begin(const char* name, const char* category);

    /** Begin on an explicit session (inert if nullptr). */
    static ManualSpan begin(TraceSession* session, const char* name,
                            const char* category);

    /** Attach a numeric annotation (no-op when inert). */
    void arg(const char* key, std::int64_t value);

    /** Record the span; further end() calls are no-ops. */
    void end();

    /** Ends the span if still open. */
    ~ManualSpan();

  private:
    TraceSession* session_ = nullptr;
    TraceEvent event_;
};

/** RAII span: begins at construction, records at scope exit. */
class ScopedSpan {
  public:
    ScopedSpan(const char* name, const char* category)
        : span_(ManualSpan::begin(name, category))
    {
    }

    ScopedSpan(TraceSession* session, const char* name, const char* category)
        : span_(ManualSpan::begin(session, name, category))
    {
    }

    void
    arg(const char* key, std::int64_t value)
    {
        span_.arg(key, value);
    }

  private:
    ManualSpan span_;
};

/**
 * Parse a trace produced by write_chrome_json back into spans (metadata
 * records are skipped). Understands the subset of JSON the writer emits;
 * throws FatalError on malformed input. Used by tests and by external
 * tooling that post-processes traces.
 */
std::vector<TraceEvent> parse_trace_events(const std::string& json);

}  // namespace darwin::obs

#endif  // DARWIN_OBS_TRACE_H
