#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

namespace darwin::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
{
    slots_.reserve(std::max<std::size_t>(capacity, 1));
    for (std::size_t i = 0; i < std::max<std::size_t>(capacity, 1); ++i)
        slots_.push_back(std::make_unique<Slot>());
}

void
FlightRecorder::record(TraceEvent event)
{
    const std::uint64_t seq =
        head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = *slots_[seq % slots_.size()];
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.filled = true;
    slot.event = std::move(event);
}

std::vector<TraceEvent>
FlightRecorder::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(slots_.size());
    for (const auto& slot : slots_) {
        std::lock_guard<std::mutex> lock(slot->mutex);
        if (slot->filled)
            out.push_back(slot->event);
    }
    // Slot order is ring order, not time order, once the ring has
    // wrapped; restore a stable oldest-first timeline for the dump.
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.start_us < b.start_us;
                     });
    return out;
}

std::uint64_t
FlightRecorder::recorded() const
{
    return head_.load(std::memory_order_relaxed);
}

std::uint64_t
FlightRecorder::dropped() const
{
    const std::uint64_t total = recorded();
    const std::uint64_t cap = slots_.size();
    return total > cap ? total - cap : 0;
}

}  // namespace darwin::obs
