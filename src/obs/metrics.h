/**
 * @file
 * Pipeline-wide metrics registry: named counters, gauges (with
 * high-water marks), and latency histograms, dumped as JSON.
 *
 * Promoted out of src/batch/ so every layer shares one vocabulary: the
 * batch engine exposes per-stage queue depths and task latencies
 * ("batch.*"), the serial WgaPipeline publishes its stage workload
 * counters ("wga.*"), and the hw models publish modeled cycles and DRAM
 * traffic ("hw.*"). See DESIGN.md "Observability" for the full metric
 * name catalogue.
 *
 * All mutation paths are thread-safe. Metric handles returned by the
 * registry are stable for the registry's lifetime, so hot paths look a
 * metric up once and then update it lock-free (counters/gauges) or under
 * a per-metric mutex (histograms).
 */
#ifndef DARWIN_OBS_METRICS_H
#define DARWIN_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace darwin::obs {

/** Monotonically increasing event count. */
class Counter {
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level (e.g. queue depth) with a high-water mark. */
class Gauge {
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
        std::int64_t seen = high_water_.load(std::memory_order_relaxed);
        while (v > seen &&
               !high_water_.compare_exchange_weak(
                   seen, v, std::memory_order_relaxed))
            ;
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    std::int64_t
    high_water() const
    {
        return high_water_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> high_water_{0};
};

/**
 * Distribution of observed values (stage latencies in seconds).
 * Keeps exact count/sum/min/max plus a bounded sample buffer for
 * quantiles; observations past the buffer cap still update the exact
 * aggregates but no longer shift the quantile estimates.
 *
 * An *empty* histogram has no defined extrema: min(), max(), and
 * quantile() return NaN until the first observe(). mean() of an empty
 * histogram is 0.0 (sum over count conventions keep ratios additive).
 * The JSON dump writes the NaN values as null.
 */
class Histogram {
  public:
    void observe(double value);

    std::uint64_t count() const;
    double sum() const;
    double mean() const;

    /** Smallest observed value; NaN when count() == 0. */
    double min() const;

    /** Largest observed value; NaN when count() == 0. */
    double max() const;

    /**
     * Quantile over the retained samples, q clamped to [0, 1]; NaN when
     * count() == 0.
     */
    double quantile(double q) const;

    /** Samples retained for quantile estimation. */
    static constexpr std::size_t kMaxSamples = 65536;

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> samples_;
};

/** Name -> metric map with on-demand creation and a JSON dump. */
class MetricsRegistry {
  public:
    /** Find or create; the returned reference stays valid. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Read-only lookup; nullptr when the metric was never created. */
    const Counter* find_counter(const std::string& name) const;
    const Gauge* find_gauge(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    /**
     * Current (name, value) of every gauge whose name starts with
     * `prefix` (empty prefix = all), in name order. Used by the
     * progress reporter to print queue depths without creating metrics.
     */
    std::vector<std::pair<std::string, std::int64_t>> gauge_snapshot(
        const std::string& prefix = {}) const;

    /**
     * Dump every metric as one JSON object:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: {"value": v, "high_water": h}, ...},
     *    "histograms": {name: {"count": n, "sum": s, "mean": m,
     *                          "min": lo, "max": hi,
     *                          "p50": a, "p90": b, "p99": c}, ...}}
     * Non-finite values (the empty-histogram NaNs) are emitted as null
     * so the dump is always valid JSON.
     */
    void write_json(std::ostream& out) const;
    std::string to_json() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace darwin::obs

#endif  // DARWIN_OBS_METRICS_H
