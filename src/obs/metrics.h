/**
 * @file
 * Pipeline-wide metrics registry: named counters, gauges (with
 * high-water marks), and latency histograms, dumped as JSON and
 * renderable as Prometheus text exposition (obs/exposition.h).
 *
 * Promoted out of src/batch/ so every layer shares one vocabulary: the
 * batch engine exposes per-stage queue depths and task latencies
 * ("batch.*"), the serial WgaPipeline publishes its stage workload
 * counters ("wga.*"), the hw models publish modeled cycles and DRAM
 * traffic ("hw.*"), and the serve daemon publishes request/cache
 * telemetry ("serve.*"). See DESIGN.md "Observability" for the full
 * metric name catalogue.
 *
 * All mutation paths are thread-safe. Metric handles returned by the
 * registry are stable for the registry's lifetime, so hot paths look a
 * metric up once and then update it lock-free (counters/gauges) or under
 * a per-metric mutex (histograms).
 *
 * Scrapers read through snapshot(): every metric is captured under one
 * lock acquisition per metric, so a histogram's count/sum/buckets are
 * mutually consistent even while writers are observing (reading the
 * fields through separate accessor calls can tear mid-update).
 */
#ifndef DARWIN_OBS_METRICS_H
#define DARWIN_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace darwin::obs {

/** Monotonically increasing event count. */
class Counter {
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Instantaneous level (e.g. queue depth) with a high-water mark. */
class Gauge {
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
        std::int64_t seen = high_water_.load(std::memory_order_relaxed);
        while (v > seen &&
               !high_water_.compare_exchange_weak(
                   seen, v, std::memory_order_relaxed))
            ;
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    std::int64_t
    high_water() const
    {
        return high_water_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
    std::atomic<std::int64_t> high_water_{0};
};

/** One consistent gauge reading. */
struct GaugeSnapshot {
    std::int64_t value = 0;
    std::int64_t high_water = 0;
};

/**
 * One consistent histogram reading, captured under a single lock
 * acquisition. `buckets` holds *cumulative* counts over the fixed
 * log-spaced bounds (Histogram::bucket_bound): buckets[i] is the number
 * of observations <= bucket_bound(i), so buckets.back() == count. The
 * quantiles come from the reservoir samples; min/max/quantiles are NaN
 * when count == 0.
 */
struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t nonfinite = 0;  ///< rejected non-finite observations
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    std::array<std::uint64_t, 36> buckets{};

    double
    mean() const
    {
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
};

/**
 * Distribution of observed values (stage latencies in seconds).
 * Keeps exact count/sum/min/max, fixed log-spaced cumulative bucket
 * counts (Prometheus-exposable and mergeable across processes, since
 * the bounds never vary), plus a bounded sample buffer for quantiles;
 * observations past the buffer cap still update the exact aggregates
 * and buckets but no longer shift the quantile estimates.
 *
 * Non-finite observations (NaN/Inf) are counted separately and excluded
 * from every aggregate, so one bad value can never poison the min/max/
 * sum that the JSON dump and the Prometheus exposition render.
 *
 * An *empty* histogram has no defined extrema: min(), max(), and
 * quantile() return NaN until the first observe(). mean() of an empty
 * histogram is 0.0 (sum over count conventions keep ratios additive).
 * The JSON dump writes the NaN values as null.
 */
class Histogram {
  public:
    void observe(double value);

    std::uint64_t count() const;
    double sum() const;
    double mean() const;

    /** Smallest observed value; NaN when count() == 0. */
    double min() const;

    /** Largest observed value; NaN when count() == 0. */
    double max() const;

    /**
     * Quantile over the retained samples, q clamped to [0, 1]; NaN when
     * count() == 0.
     */
    double quantile(double q) const;

    /** Everything above, read consistently under one lock. */
    HistogramSnapshot snapshot() const;

    /** Forget every observation (count, sum, buckets, samples). */
    void reset();

    /** Samples retained for quantile estimation. */
    static constexpr std::size_t kMaxSamples = 65536;

    /**
     * Fixed log-spaced bucket grid shared by every histogram: bound i
     * is 1e-6 * 2^i seconds (1 microsecond up to ~4.8 hours), and the
     * last bucket is +Inf. Identical bounds everywhere make bucket
     * vectors mergeable across shards, runs, and processes.
     */
    static constexpr std::size_t kNumBuckets = 36;
    static double bucket_bound(std::size_t i);

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    std::uint64_t nonfinite_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::array<std::uint64_t, kNumBuckets> buckets_{};  // per-bucket
    std::vector<double> samples_;
};

/**
 * A registry-wide point-in-time reading: every metric in name order,
 * each captured atomically (per metric). This is what the JSON dump and
 * the Prometheus exposition render, so both formats agree with each
 * other for a given scrape.
 */
struct MetricsSnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/** Name -> metric map with on-demand creation and JSON dumps. */
class MetricsRegistry {
  public:
    /** Find or create; the returned reference stays valid. */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histogram& histogram(const std::string& name);

    /** Read-only lookup; nullptr when the metric was never created. */
    const Counter* find_counter(const std::string& name) const;
    const Gauge* find_gauge(const std::string& name) const;
    const Histogram* find_histogram(const std::string& name) const;

    /**
     * Current (name, value) of every gauge whose name starts with
     * `prefix` (empty prefix = all), in name order. Used by the
     * progress reporter to print queue depths without creating metrics.
     */
    std::vector<std::pair<std::string, std::int64_t>> gauge_snapshot(
        const std::string& prefix = {}) const;

    /** Consistent point-in-time reading of every metric (name order). */
    MetricsSnapshot snapshot() const;

    /**
     * Dump every metric as one JSON object:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: {"value": v, "high_water": h}, ...},
     *    "histograms": {name: {"count": n, "sum": s, "mean": m,
     *                          "min": lo, "max": hi,
     *                          "p50": a, "p90": b, "p99": c,
     *                          "buckets": {"le": cumulative, ...}}, ...}}
     * Rendered from one snapshot() so the fields of a histogram are
     * mutually consistent under concurrent writers. Non-finite values
     * (the empty-histogram NaNs, or anything a caller fed a histogram)
     * are emitted as null so the dump is always valid JSON.
     */
    void write_json(std::ostream& out) const;
    std::string to_json() const;

    /** Same content as write_json on a single line (no newlines) —
     *  embeddable in line-delimited protocols (serve Op::Stats). */
    std::string to_json_compact() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Render a snapshot as the write_json object (pretty or one line). */
void write_snapshot_json(std::ostream& out, const MetricsSnapshot& snapshot,
                         bool pretty);

}  // namespace darwin::obs

#endif  // DARWIN_OBS_METRICS_H
