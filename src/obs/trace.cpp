#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::obs {

namespace {

std::atomic<TraceSession*> g_session{nullptr};

thread_local std::int64_t t_request_id = -1;

}  // namespace

RequestTag::RequestTag(std::int64_t request_id) : previous_(t_request_id)
{
    t_request_id = request_id;
}

RequestTag::~RequestTag()
{
    t_request_id = previous_;
}

std::int64_t
RequestTag::current()
{
    return t_request_id;
}

TraceSession::TraceSession() : epoch_(std::chrono::steady_clock::now()) {}

std::int64_t
TraceSession::now_us() const
{
    const auto dt = std::chrono::steady_clock::now() - epoch_;
    return std::chrono::duration_cast<std::chrono::microseconds>(dt).count();
}

void
TraceSession::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::vector<TraceEvent>
TraceSession::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceSession::write_chrome_json(std::ostream& out) const
{
    const std::vector<TraceEvent> events = snapshot();
    std::set<std::uint32_t> tids;
    for (const TraceEvent& event : events)
        tids.insert(event.tid);

    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const std::uint32_t tid : tids) {
        out << (first ? "" : ",") << "\n"
            << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
            << ", \"name\": \"thread_name\", \"args\": {\"name\": "
            << json_quote(strprintf("thread-%u", tid)) << "}}";
        first = false;
    }
    for (const TraceEvent& event : events) {
        out << (first ? "" : ",") << "\n"
            << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << event.tid
            << ", \"name\": " << json_quote(event.name)
            << ", \"cat\": " << json_quote(event.category)
            << ", \"ts\": " << event.start_us
            << ", \"dur\": " << event.duration_us;
        if (!event.args.empty()) {
            out << ", \"args\": {";
            for (std::size_t i = 0; i < event.args.size(); ++i) {
                out << (i == 0 ? "" : ", ")
                    << json_quote(event.args[i].key) << ": "
                    << event.args[i].value;
            }
            out << "}";
        }
        out << "}";
        first = false;
    }
    out << "\n]}\n";
}

std::string
TraceSession::to_json() const
{
    std::ostringstream out;
    write_chrome_json(out);
    return out.str();
}

void
TraceSession::install(TraceSession* session)
{
    g_session.store(session, std::memory_order_release);
}

TraceSession*
TraceSession::current()
{
    return g_session.load(std::memory_order_acquire);
}

ManualSpan::ManualSpan(ManualSpan&& other) noexcept
    : session_(other.session_), event_(std::move(other.event_))
{
    other.session_ = nullptr;
}

ManualSpan&
ManualSpan::operator=(ManualSpan&& other) noexcept
{
    if (this != &other) {
        end();
        session_ = other.session_;
        event_ = std::move(other.event_);
        other.session_ = nullptr;
    }
    return *this;
}

ManualSpan
ManualSpan::begin(const char* name, const char* category)
{
    return begin(TraceSession::current(), name, category);
}

ManualSpan
ManualSpan::begin(TraceSession* session, const char* name,
                  const char* category)
{
    ManualSpan span;
    if (session == nullptr)
        return span;
    span.session_ = session;
    span.event_.name = name;
    span.event_.category = category;
    span.event_.tid = current_thread_index();
    span.event_.start_us = session->now_us();
    if (t_request_id >= 0)
        span.event_.args.push_back(TraceArg{"req", t_request_id});
    return span;
}

void
ManualSpan::arg(const char* key, std::int64_t value)
{
    if (session_ != nullptr)
        event_.args.push_back(TraceArg{key, value});
}

void
ManualSpan::end()
{
    if (session_ == nullptr)
        return;
    event_.duration_us = session_->now_us() - event_.start_us;
    session_->record(std::move(event_));
    session_ = nullptr;
    event_ = TraceEvent{};
}

ManualSpan::~ManualSpan()
{
    end();
}

// ---------------------------------------------------------------------
// Minimal JSON reader for the writer's output subset (objects, arrays,
// strings with backslash escapes, integer/float numbers, literals).

namespace {

struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;
};

class JsonReader {
  public:
    explicit JsonReader(const std::string& text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parse_value();
        skip_space();
        if (pos_ != text_.size())
            fail("trailing content");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const char* what) const
    {
        fatal(strprintf("trace JSON parse error at offset %zu: %s", pos_,
                        what));
    }

    void
    skip_space()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skip_space();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    JsonValue
    parse_value()
    {
        switch (peek()) {
          case '{': return parse_object();
          case '[': return parse_array();
          case '"': return parse_string();
          case 't':
          case 'f':
          case 'n': return parse_literal();
          default:  return parse_number();
        }
    }

    JsonValue
    parse_object()
    {
        expect('{');
        JsonValue out;
        out.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        while (true) {
            JsonValue key = parse_string();
            expect(':');
            out.members[key.text] = parse_value();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return out;
        }
    }

    JsonValue
    parse_array()
    {
        expect('[');
        JsonValue out;
        out.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        while (true) {
            out.items.push_back(parse_value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return out;
        }
    }

    JsonValue
    parse_string()
    {
        expect('"');
        JsonValue out;
        out.kind = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.text.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out.text.push_back('"'); break;
              case '\\': out.text.push_back('\\'); break;
              case '/':  out.text.push_back('/'); break;
              case 'n':  out.text.push_back('\n'); break;
              case 't':  out.text.push_back('\t'); break;
              case 'r':  out.text.push_back('\r'); break;
              case 'b':  out.text.push_back('\b'); break;
              case 'f':  out.text.push_back('\f'); break;
              case 'u':
                // The writer only emits \u00XX control escapes.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                out.text.push_back(static_cast<char>(
                    std::stoi(text_.substr(pos_, 4), nullptr, 16)));
                pos_ += 4;
                break;
              default: fail("unsupported escape");
            }
        }
    }

    JsonValue
    parse_literal()
    {
        JsonValue out;
        auto match = [&](const char* word) {
            const std::size_t n = std::string(word).size();
            if (text_.compare(pos_, n, word) != 0)
                fail("bad literal");
            pos_ += n;
        };
        if (text_[pos_] == 't') {
            match("true");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
        } else if (text_[pos_] == 'f') {
            match("false");
            out.kind = JsonValue::Kind::Bool;
        } else {
            match("null");
        }
        return out;
    }

    JsonValue
    parse_number()
    {
        const std::size_t begin = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (begin == pos_)
            fail("expected a number");
        JsonValue out;
        out.kind = JsonValue::Kind::Number;
        out.number = std::stod(text_.substr(begin, pos_ - begin));
        return out;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

const JsonValue*
find_member(const JsonValue& object, const std::string& key)
{
    const auto it = object.members.find(key);
    return it == object.members.end() ? nullptr : &it->second;
}

}  // namespace

std::vector<TraceEvent>
parse_trace_events(const std::string& json)
{
    const JsonValue root = JsonReader(json).parse();
    if (root.kind != JsonValue::Kind::Object)
        fatal("trace JSON: root is not an object");
    const JsonValue* events = find_member(root, "traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::Array)
        fatal("trace JSON: missing traceEvents array");

    std::vector<TraceEvent> out;
    for (const JsonValue& item : events->items) {
        if (item.kind != JsonValue::Kind::Object)
            fatal("trace JSON: event is not an object");
        const JsonValue* ph = find_member(item, "ph");
        if (ph == nullptr || ph->text != "X")
            continue;  // metadata or non-span record
        TraceEvent event;
        if (const JsonValue* v = find_member(item, "name"))
            event.name = v->text;
        if (const JsonValue* v = find_member(item, "cat"))
            event.category = v->text;
        if (const JsonValue* v = find_member(item, "tid"))
            event.tid = static_cast<std::uint32_t>(v->number);
        if (const JsonValue* v = find_member(item, "ts"))
            event.start_us = static_cast<std::int64_t>(v->number);
        if (const JsonValue* v = find_member(item, "dur"))
            event.duration_us = static_cast<std::int64_t>(v->number);
        if (const JsonValue* args = find_member(item, "args")) {
            for (const auto& [key, value] : args->members) {
                event.args.push_back(TraceArg{
                    key, static_cast<std::int64_t>(value.number)});
            }
        }
        out.push_back(std::move(event));
    }
    return out;
}

}  // namespace darwin::obs
