#include "obs/exposition.h"

#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.h"

namespace darwin::obs {

namespace {

bool
valid_name_char(char c, bool first)
{
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':')
        return true;
    return !first && c >= '0' && c <= '9';
}

/**
 * Render a double for an exposition sample value. Prometheus accepts
 * Go-style float literals; non-finite sums (which obs::Histogram can
 * no longer produce, but defensive here) become NaN.
 */
std::string
sample_value(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    return strprintf("%.9g", v);
}

std::string
le_label(std::size_t i)
{
    if (i + 1 >= Histogram::kNumBuckets)
        return "+Inf";
    return strprintf("%.9g", Histogram::bucket_bound(i));
}

}  // namespace

std::string
sanitize_metric_name(const std::string& name)
{
    if (name.empty())
        return "_";
    std::string out;
    out.reserve(name.size() + 1);
    if (name[0] >= '0' && name[0] <= '9')
        out.push_back('_');
    for (char c : name)
        out.push_back(valid_name_char(c, out.empty()) ? c : '_');
    return out;
}

std::string
escape_label_value(const std::string& value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

void
write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot)
{
    for (const auto& [name, value] : snapshot.counters) {
        const std::string prom = sanitize_metric_name(name) + "_total";
        out << "# TYPE " << prom << " counter\n";
        out << prom << " " << value << "\n";
    }
    for (const auto& [name, g] : snapshot.gauges) {
        const std::string prom = sanitize_metric_name(name);
        out << "# TYPE " << prom << " gauge\n";
        out << prom << " " << g.value << "\n";
        out << "# TYPE " << prom << "_high_water gauge\n";
        out << prom << "_high_water " << g.high_water << "\n";
    }
    for (const auto& [name, h] : snapshot.histograms) {
        const std::string prom = sanitize_metric_name(name);
        out << "# TYPE " << prom << " histogram\n";
        std::uint64_t prev = 0;
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            // Sparse cumulative rendering: skip bounds that gained no
            // observations. The +Inf bucket is mandatory and always
            // equals _count.
            if (h.buckets[i] == prev && i + 1 < h.buckets.size())
                continue;
            out << prom << "_bucket{le=\"" << le_label(i)
                << "\"} " << h.buckets[i] << "\n";
            prev = h.buckets[i];
        }
        out << prom << "_sum " << sample_value(h.sum) << "\n";
        out << prom << "_count " << h.count << "\n";
        if (h.nonfinite != 0) {
            out << "# TYPE " << prom << "_nonfinite_total counter\n";
            out << prom << "_nonfinite_total " << h.nonfinite << "\n";
        }
    }
}

std::string
to_prometheus(const MetricsRegistry& metrics)
{
    std::ostringstream out;
    write_prometheus(out, metrics.snapshot());
    return out.str();
}

}  // namespace darwin::obs
