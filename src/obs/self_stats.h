/**
 * @file
 * Process self-monitoring: a background sampler that periodically reads
 * /proc/self and publishes resource gauges into the metrics registry,
 * so a scrape of a long-lived daemon shows *process* health (memory,
 * CPU, descriptor and thread counts) next to the pipeline telemetry.
 *
 * Published gauges:
 *   proc.rss_bytes    resident set size
 *   proc.cpu_seconds  user+system CPU time, whole seconds
 *   proc.cpu_millis   the same at millisecond resolution
 *   proc.fds          open file descriptors
 *   proc.threads      OS threads
 *
 * The caller can attach an extra per-sample hook for gauges only it can
 * compute (the serve daemon publishes serve.queue_depth this way). On
 * platforms without /proc the sampler degrades to publishing nothing
 * (sample_proc() reports ok == false) rather than failing.
 */
#ifndef DARWIN_OBS_SELF_STATS_H
#define DARWIN_OBS_SELF_STATS_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"

namespace darwin::obs {

/** One /proc/self reading; ok == false when /proc is unavailable. */
struct ProcSample {
    bool ok = false;
    std::int64_t rss_bytes = 0;
    double cpu_seconds = 0.0;
    std::int64_t fds = 0;
    std::int64_t threads = 0;
};

/** Read the current process stats (statm, stat, fd/, task/). */
ProcSample sample_proc();

/**
 * Samples on construction, then every `interval_seconds` on a
 * background thread until stop() or destruction. The extra hook (may
 * be empty) runs after the proc gauges on every sample.
 */
class SelfMonitor {
  public:
    SelfMonitor(MetricsRegistry& metrics, double interval_seconds,
                std::function<void()> extra_sampler = {});
    ~SelfMonitor();

    SelfMonitor(const SelfMonitor&) = delete;
    SelfMonitor& operator=(const SelfMonitor&) = delete;

    /** Publish one sample immediately (also used by the thread). */
    void sample_once();

    /** Stop and join the sampler thread (idempotent). */
    void stop();

  private:
    MetricsRegistry& metrics_;
    std::function<void()> extra_sampler_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread thread_;
};

}  // namespace darwin::obs

#endif  // DARWIN_OBS_SELF_STATS_H
