#include "seq/genome.h"

#include <algorithm>

#include "util/logging.h"

namespace darwin::seq {

std::size_t
Genome::add_chromosome(Sequence chromosome)
{
    chromosomes_.push_back(std::move(chromosome));
    flat_valid_ = false;
    return chromosomes_.size() - 1;
}

const Sequence&
Genome::chromosome(std::size_t i) const
{
    require(i < chromosomes_.size(), "Genome::chromosome: bad index");
    return chromosomes_[i];
}

std::size_t
Genome::total_length() const
{
    std::size_t total = 0;
    for (const auto& chrom : chromosomes_)
        total += chrom.size();
    return total;
}

const Sequence&
Genome::flattened() const
{
    if (!flat_valid_)
        rebuild_flat();
    return flat_;
}

std::size_t
Genome::flat_offset(std::size_t chromosome_index) const
{
    if (!flat_valid_)
        rebuild_flat();
    require(chromosome_index < flat_offsets_.size(),
            "Genome::flat_offset: bad index");
    return flat_offsets_[chromosome_index];
}

GenomePosition
Genome::resolve(std::size_t flat_position, bool* in_separator) const
{
    if (!flat_valid_)
        rebuild_flat();
    require(!chromosomes_.empty(), "Genome::resolve: empty genome");
    // flat_offsets_ is sorted; find the last chromosome starting at or
    // before flat_position.
    auto it = std::upper_bound(flat_offsets_.begin(), flat_offsets_.end(),
                               flat_position);
    const std::size_t chrom =
        static_cast<std::size_t>(it - flat_offsets_.begin()) - 1;
    const std::size_t within = flat_position - flat_offsets_[chrom];
    if (within >= chromosomes_[chrom].size()) {
        // Inside the separator after `chrom`.
        if (in_separator)
            *in_separator = true;
        const std::size_t next = std::min(chrom + 1,
                                          chromosomes_.size() - 1);
        return {next, 0};
    }
    if (in_separator)
        *in_separator = false;
    return {chrom, within};
}

void
Genome::rebuild_flat() const
{
    std::vector<std::uint8_t> codes;
    std::size_t total = total_length();
    if (!chromosomes_.empty())
        total += (chromosomes_.size() - 1) * separator_length();
    codes.reserve(total);
    flat_offsets_.clear();
    for (std::size_t i = 0; i < chromosomes_.size(); ++i) {
        if (i > 0)
            codes.insert(codes.end(), separator_length(), BaseN);
        flat_offsets_.push_back(codes.size());
        const auto& chrom_codes = chromosomes_[i].codes();
        codes.insert(codes.end(), chrom_codes.begin(), chrom_codes.end());
    }
    flat_ = Sequence(name_ + ":flat", std::move(codes));
    flat_valid_ = true;
}

}  // namespace darwin::seq
