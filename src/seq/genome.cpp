#include "seq/genome.h"

#include <algorithm>

#include "util/logging.h"

namespace darwin::seq {

std::size_t
Genome::add_chromosome(Sequence chromosome)
{
    require(!packed_mode_,
            "Genome::add_chromosome: cannot add a byte chromosome to a "
            "packed genome");
    chromosomes_.push_back(std::move(chromosome));
    flat_valid_ = false;
    packed_flat_valid_ = false;
    offsets_valid_ = false;
    return chromosomes_.size() - 1;
}

std::size_t
Genome::add_chromosome(PackedSequence chromosome)
{
    require(chromosomes_.empty(),
            "Genome::add_chromosome: cannot add a packed chromosome to a "
            "byte genome");
    packed_mode_ = true;
    packed_chromosomes_.push_back(std::move(chromosome));
    decoded_.clear();
    flat_valid_ = false;
    packed_flat_valid_ = false;
    offsets_valid_ = false;
    return packed_chromosomes_.size() - 1;
}

std::size_t
Genome::num_chromosomes() const
{
    return packed_mode_ ? packed_chromosomes_.size() : chromosomes_.size();
}

const std::string&
Genome::chromosome_name(std::size_t i) const
{
    require(i < num_chromosomes(), "Genome::chromosome_name: bad index");
    return packed_mode_ ? packed_chromosomes_[i].name()
                        : chromosomes_[i].name();
}

std::size_t
Genome::chromosome_length(std::size_t i) const
{
    require(i < num_chromosomes(), "Genome::chromosome_length: bad index");
    return packed_mode_ ? packed_chromosomes_[i].size()
                        : chromosomes_[i].size();
}

const Sequence&
Genome::chromosome(std::size_t i) const
{
    require(i < num_chromosomes(), "Genome::chromosome: bad index");
    if (!packed_mode_)
        return chromosomes_[i];
    if (decoded_.size() != packed_chromosomes_.size())
        decoded_.resize(packed_chromosomes_.size());
    if (!decoded_[i]) {
        decoded_[i] = std::make_unique<Sequence>(
            packed_chromosomes_[i].to_sequence());
    }
    return *decoded_[i];
}

const std::vector<Sequence>&
Genome::chromosomes() const
{
    require(!packed_mode_,
            "Genome::chromosomes: packed genome has no byte chromosome "
            "vector; use packed_chromosomes() or per-chromosome accessors");
    return chromosomes_;
}

const PackedSequence&
Genome::packed_chromosome(std::size_t i) const
{
    require(packed_mode_, "Genome::packed_chromosome: byte-mode genome");
    require(i < packed_chromosomes_.size(),
            "Genome::packed_chromosome: bad index");
    return packed_chromosomes_[i];
}

const std::vector<PackedSequence>&
Genome::packed_chromosomes() const
{
    require(packed_mode_, "Genome::packed_chromosomes: byte-mode genome");
    return packed_chromosomes_;
}

std::size_t
Genome::total_length() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < num_chromosomes(); ++i)
        total += chromosome_length(i);
    return total;
}

std::size_t
Genome::flat_length() const
{
    ensure_offsets();
    return flat_length_;
}

const Sequence&
Genome::flattened() const
{
    if (!flat_valid_)
        rebuild_flat();
    return flat_;
}

const PackedSequence&
Genome::flattened_packed() const
{
    if (packed_flat_valid_)
        return packed_flat_;
    ensure_offsets();
    if (packed_mode_) {
        PackedSequence flat;
        flat.set_name(name_ + ":flat");
        for (std::size_t i = 0; i < packed_chromosomes_.size(); ++i) {
            if (i > 0)
                flat.append_n_run(separator_length());
            const PackedSequence& chrom = packed_chromosomes_[i];
            // Word-aligned append: flat_offsets keep every chromosome
            // start at a multiple of the packing geometry only when
            // lengths cooperate, so copy base by base via decode-free
            // window extraction.
            std::size_t pos = 0;
            while (pos < chrom.size()) {
                const std::size_t chunk =
                    std::min<std::size_t>(32, chrom.size() - pos);
                std::uint64_t lanes = chrom.extract_kmer(pos, chunk);
                std::uint64_t ambiguous = chrom.n_mask(pos, chunk);
                for (std::size_t j = 0; j < chunk; ++j) {
                    if (ambiguous & 1)
                        flat.append_code(BaseN);
                    else
                        flat.append_code(
                            static_cast<std::uint8_t>(lanes & 3));
                    lanes >>= 2;
                    ambiguous >>= 1;
                }
                pos += chunk;
            }
        }
        packed_flat_ = std::move(flat);
    } else {
        packed_flat_ = PackedSequence::pack(flattened());
    }
    packed_flat_valid_ = true;
    return packed_flat_;
}

void
Genome::release_decoded() const
{
    if (!packed_mode_)
        return;
    decoded_.clear();
    flat_ = Sequence();
    flat_valid_ = false;
}

std::size_t
Genome::flat_offset(std::size_t chromosome_index) const
{
    ensure_offsets();
    require(chromosome_index < flat_offsets_.size(),
            "Genome::flat_offset: bad index");
    return flat_offsets_[chromosome_index];
}

GenomePosition
Genome::resolve(std::size_t flat_position, bool* in_separator) const
{
    ensure_offsets();
    require(num_chromosomes() > 0, "Genome::resolve: empty genome");
    // flat_offsets_ is sorted; find the last chromosome starting at or
    // before flat_position.
    auto it = std::upper_bound(flat_offsets_.begin(), flat_offsets_.end(),
                               flat_position);
    const std::size_t chrom =
        static_cast<std::size_t>(it - flat_offsets_.begin()) - 1;
    const std::size_t within = flat_position - flat_offsets_[chrom];
    if (within >= chromosome_length(chrom)) {
        // Inside the separator after `chrom`.
        if (in_separator)
            *in_separator = true;
        const std::size_t next = std::min(chrom + 1,
                                          num_chromosomes() - 1);
        return {next, 0};
    }
    if (in_separator)
        *in_separator = false;
    return {chrom, within};
}

void
Genome::ensure_offsets() const
{
    if (offsets_valid_)
        return;
    flat_offsets_.clear();
    std::size_t position = 0;
    for (std::size_t i = 0; i < num_chromosomes(); ++i) {
        if (i > 0)
            position += separator_length();
        flat_offsets_.push_back(position);
        position += chromosome_length(i);
    }
    flat_length_ = position;
    offsets_valid_ = true;
}

void
Genome::rebuild_flat() const
{
    ensure_offsets();
    std::vector<std::uint8_t> codes;
    codes.reserve(flat_length_);
    for (std::size_t i = 0; i < num_chromosomes(); ++i) {
        if (i > 0)
            codes.insert(codes.end(), separator_length(), BaseN);
        if (packed_mode_) {
            const PackedSequence& chrom = packed_chromosomes_[i];
            const std::size_t begin = codes.size();
            codes.resize(begin + chrom.size());
            chrom.decode(0, chrom.size(), codes.data() + begin);
        } else {
            const auto& chrom_codes = chromosomes_[i].codes();
            codes.insert(codes.end(), chrom_codes.begin(),
                         chrom_codes.end());
        }
    }
    flat_ = Sequence(name_ + ":flat", std::move(codes));
    flat_valid_ = true;
}

}  // namespace darwin::seq
