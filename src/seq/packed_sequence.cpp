#include "seq/packed_sequence.h"

#include <algorithm>

#include "util/logging.h"

namespace darwin::seq {

PackedSequence
PackedSequence::pack(std::string name, std::span<const std::uint8_t> codes)
{
    PackedSequence packed;
    packed.name_ = std::move(name);
    packed.size_ = codes.size();
    packed.base_words_.assign(base_word_count(codes.size()), 0);
    packed.n_words_.assign(n_word_count(codes.size()), 0);
    for (std::size_t i = 0; i < codes.size(); ++i) {
        const std::uint8_t code = codes[i];
        if (is_concrete(code)) {
            packed.base_words_[i >> 5] |= static_cast<std::uint64_t>(code)
                                          << (2 * (i & 31));
        } else {
            // N lanes stay zero in the base words so equal sequences
            // always produce equal words (digest stability).
            packed.n_words_[i >> 6] |= 1ULL << (i & 63);
        }
    }
    return packed;
}

PackedSequence
PackedSequence::pack(const Sequence& sequence)
{
    return pack(sequence.name(), std::span<const std::uint8_t>(
                                     sequence.codes().data(),
                                     sequence.codes().size()));
}

PackedSequence
PackedSequence::attach(std::string name, std::size_t num_bases,
                       const std::uint64_t* base_words,
                       const std::uint64_t* n_words,
                       std::shared_ptr<const void> keepalive)
{
    PackedSequence packed;
    packed.name_ = std::move(name);
    packed.size_ = num_bases;
    packed.attached_ = true;
    packed.base_ptr_ = base_words;
    packed.n_ptr_ = n_words;
    packed.keepalive_ = std::move(keepalive);
    return packed;
}

std::uint64_t
PackedSequence::extract_kmer(std::size_t pos, std::size_t k) const
{
    if (pos >= size_)
        return 0;
    k = std::min({k, size_ - pos, std::size_t{32}});
    const std::uint64_t* words = base_words();
    const std::size_t word = pos >> 5;
    const unsigned shift = 2 * static_cast<unsigned>(pos & 31);
    std::uint64_t lanes = words[word] >> shift;
    if (shift != 0 && word + 1 < num_base_words())
        lanes |= words[word + 1] << (64 - shift);
    if (k < 32)
        lanes &= (1ULL << (2 * k)) - 1;
    return lanes;
}

std::uint64_t
PackedSequence::n_mask(std::size_t pos, std::size_t len) const
{
    if (pos >= size_)
        return 0;
    len = std::min({len, size_ - pos, std::size_t{64}});
    const std::uint64_t* words = n_words();
    const std::size_t word = pos >> 6;
    const unsigned shift = static_cast<unsigned>(pos & 63);
    std::uint64_t bits = words[word] >> shift;
    if (shift != 0 && word + 1 < num_n_words())
        bits |= words[word + 1] << (64 - shift);
    if (len < 64)
        bits &= (1ULL << len) - 1;
    return bits;
}

void
PackedSequence::decode(std::size_t start, std::size_t len,
                       std::uint8_t* out) const
{
    if (start >= size_)
        return;
    len = std::min(len, size_ - start);
    std::size_t pos = start;
    std::size_t remaining = len;
    std::uint8_t* cursor = out;
    const std::uint64_t* words = base_words();
    while (remaining > 0) {
        // One word load serves up to 32 output bytes.
        const std::size_t chunk =
            std::min<std::size_t>(32 - (pos & 31), remaining);
        std::uint64_t lanes = words[pos >> 5] >> (2 * (pos & 31));
        for (std::size_t j = 0; j < chunk; ++j) {
            cursor[j] = static_cast<std::uint8_t>(lanes & 3);
            lanes >>= 2;
        }
        std::uint64_t ambiguous = n_mask(pos, chunk);
        while (ambiguous != 0) {
            const unsigned j =
                static_cast<unsigned>(__builtin_ctzll(ambiguous));
            ambiguous &= ambiguous - 1;
            cursor[j] = BaseN;
        }
        pos += chunk;
        cursor += chunk;
        remaining -= chunk;
    }
}

std::vector<std::uint8_t>
PackedSequence::decode(std::size_t start, std::size_t len) const
{
    if (start >= size_)
        return {};
    len = std::min(len, size_ - start);
    std::vector<std::uint8_t> codes(len);
    decode(start, len, codes.data());
    return codes;
}

Sequence
PackedSequence::to_sequence() const
{
    return Sequence(name_, decode(0, size_));
}

PackedSequence
PackedSequence::reverse_complement(std::string name) const
{
    PackedSequence rc;
    rc.name_ = name.empty() ? name_ : std::move(name);
    rc.size_ = size_;
    rc.base_words_.assign(num_base_words(), 0);
    rc.n_words_.assign(num_n_words(), 0);
    for (std::size_t i = 0; i < size_; ++i) {
        const std::size_t src = size_ - 1 - i;
        if (is_n(src)) {
            rc.n_words_[i >> 6] |= 1ULL << (i & 63);
        } else {
            // 2-bit complement is XOR 3: A(0)<->T(3), C(1)<->G(2).
            const std::uint64_t code = base2(src) ^ 3u;
            rc.base_words_[i >> 5] |= code << (2 * (i & 31));
        }
    }
    return rc;
}

void
PackedSequence::ensure_owned_capacity()
{
    if (attached_)
        fatal("PackedSequence: cannot append to an attached sequence");
    if ((size_ & 31) == 0)
        base_words_.push_back(0);
    if ((size_ & 63) == 0)
        n_words_.push_back(0);
}

void
PackedSequence::append_code(std::uint8_t code)
{
    ensure_owned_capacity();
    const std::size_t i = size_++;
    if (is_concrete(code)) {
        base_words_[i >> 5] |= static_cast<std::uint64_t>(code)
                               << (2 * (i & 31));
    } else {
        n_words_[i >> 6] |= 1ULL << (i & 63);
    }
}

void
PackedSequence::append_n_run(std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        append_code(BaseN);
}

void
PackedSequence::append_codes(std::span<const std::uint8_t> codes)
{
    for (const std::uint8_t code : codes)
        append_code(code);
}

bool
PackedSequence::has_n() const
{
    const std::uint64_t* words = n_words();
    for (std::size_t i = 0; i < num_n_words(); ++i) {
        if (words[i] != 0)
            return true;
    }
    return false;
}

std::size_t
PackedSequence::heap_bytes() const
{
    if (attached_)
        return name_.capacity();
    return name_.capacity() +
           (base_words_.capacity() + n_words_.capacity()) *
               sizeof(std::uint64_t);
}

}  // namespace darwin::seq
