/**
 * @file
 * PackedSequence: 2-bit-per-base DNA storage with an N-mask sidecar.
 *
 * The byte-per-base Sequence costs 8x more memory than the information
 * content of DNA; at the paper's 100 Mbp scale that difference decides
 * whether a genome pair fits in RAM at all (Scrooge makes the same
 * argument for CPU/GPU aligners). PackedSequence stores base i in bits
 * [2*(i%32), 2*(i%32)+2) of word i/32 (LSB-first), using the same 2-bit
 * codes as the low bits of the byte encoding (A=0, C=1, G=2, T=3).
 * Ambiguous bases are recorded in a separate 1-bit-per-base mask word
 * array; their 2-bit lanes are stored as zero so equal sequences always
 * have equal words (digests over the words are stable).
 *
 * Two ownership modes mirror SeedIndex: owned (vectors built in memory)
 * and attached (raw pointers into an mmap'd .2bit sidecar, kept alive by
 * a shared_ptr token). Positions are 0-based, ranges half-open.
 */
#ifndef DARWIN_SEQ_PACKED_SEQUENCE_H
#define DARWIN_SEQ_PACKED_SEQUENCE_H

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.h"
#include "seq/sequence.h"

namespace darwin::seq {

/** A named, 2-bit packed DNA sequence with an N-position mask. */
class PackedSequence {
  public:
    PackedSequence() = default;

    /** Pack byte codes (any code >= 4 is recorded as N). */
    static PackedSequence pack(std::string name,
                               std::span<const std::uint8_t> codes);

    /** Pack an existing byte Sequence, keeping its name. */
    static PackedSequence pack(const Sequence& sequence);

    /**
     * Zero-copy attach over externally owned word arrays (an mmap'd
     * .2bit sidecar). `keepalive` pins the backing storage; the arrays
     * must outlive every copy of this PackedSequence.
     */
    static PackedSequence attach(std::string name, std::size_t num_bases,
                                 const std::uint64_t* base_words,
                                 const std::uint64_t* n_words,
                                 std::shared_ptr<const void> keepalive);

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Base code at position i, N-aware (A=0..T=3, N=4). */
    std::uint8_t
    operator[](std::size_t i) const
    {
        if (n_words()[i >> 6] & (1ULL << (i & 63)))
            return BaseN;
        return base2(i);
    }

    /** Low 2 bits only; N positions read as A. Hot-path primitive. */
    std::uint8_t
    base2(std::size_t i) const
    {
        return static_cast<std::uint8_t>(
            (base_words()[i >> 5] >> (2 * (i & 31))) & 3);
    }

    /** True when position i is ambiguous. */
    bool
    is_n(std::size_t i) const
    {
        return (n_words()[i >> 6] & (1ULL << (i & 63))) != 0;
    }

    /**
     * Up to 32 bases starting at `pos` as 2-bit lanes, LSB-first (base
     * `pos` in bits [0,2)). Lanes past the sequence end and N lanes read
     * as zero. This is the SIMD-friendly k-mer fast path: one or two
     * word loads and a shift replace k byte loads.
     */
    std::uint64_t extract_kmer(std::size_t pos, std::size_t k) const;

    /**
     * N-mask for up to 64 bases starting at `pos`: bit j is set when
     * position pos+j is ambiguous. Bits past the end read as zero.
     */
    std::uint64_t n_mask(std::size_t pos, std::size_t len) const;

    /** Word-wise decode of [start, start+len) into byte codes. */
    void decode(std::size_t start, std::size_t len, std::uint8_t* out) const;

    /** Decode [start, start+len) as a fresh byte vector. */
    std::vector<std::uint8_t> decode(std::size_t start, std::size_t len) const;

    /** Decode the whole sequence into a byte Sequence (same name). */
    Sequence to_sequence() const;

    /** Reverse complement as a new (owned) PackedSequence. */
    PackedSequence reverse_complement(std::string name = {}) const;

    /** Append one base code (owned mode only). */
    void append_code(std::uint8_t code);

    /** Append a run of N (owned mode only). */
    void append_n_run(std::size_t count);

    /** Append byte codes (owned mode only). */
    void append_codes(std::span<const std::uint8_t> codes);

    /** True when any position is ambiguous. */
    bool has_n() const;

    const std::uint64_t*
    base_words() const
    {
        return attached_ ? base_ptr_ : base_words_.data();
    }

    const std::uint64_t*
    n_words() const
    {
        return attached_ ? n_ptr_ : n_words_.data();
    }

    /** Word counts for the current size (used by the .2bit writer). */
    static std::size_t
    base_word_count(std::size_t num_bases)
    {
        return (num_bases + 31) / 32;
    }

    static std::size_t
    n_word_count(std::size_t num_bases)
    {
        return (num_bases + 63) / 64;
    }

    std::size_t num_base_words() const { return base_word_count(size_); }
    std::size_t num_n_words() const { return n_word_count(size_); }

    bool attached() const { return attached_; }

    /** Approximate heap footprint in bytes (0 when attached). */
    std::size_t heap_bytes() const;

  private:
    void ensure_owned_capacity();

    std::string name_;
    std::size_t size_ = 0;
    std::vector<std::uint64_t> base_words_;
    std::vector<std::uint64_t> n_words_;
    bool attached_ = false;
    const std::uint64_t* base_ptr_ = nullptr;
    const std::uint64_t* n_ptr_ = nullptr;
    std::shared_ptr<const void> keepalive_;
};

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_PACKED_SEQUENCE_H
