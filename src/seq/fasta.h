/**
 * @file
 * FASTA reading and writing.
 *
 * Supports multi-record files, lower/upper case, arbitrary line widths, and
 * comments. Malformed inputs raise FatalError with a line-numbered message.
 */
#ifndef DARWIN_SEQ_FASTA_H
#define DARWIN_SEQ_FASTA_H

#include <iosfwd>
#include <string>
#include <vector>

#include "seq/genome.h"
#include "seq/sequence.h"

namespace darwin::seq {

/** Parse every record from a FASTA stream. `source` names the stream in
 *  diagnostics (the file path when reading from disk). */
std::vector<Sequence> read_fasta(std::istream& in,
                                 const std::string& source = "");

/** Parse every record from a FASTA file. */
std::vector<Sequence> read_fasta_file(const std::string& path);

/** Read a FASTA file as a Genome (one chromosome per record). */
Genome read_genome(const std::string& path, const std::string& name = "");

/** Write records to a stream with the given line width. */
void write_fasta(std::ostream& out, const std::vector<Sequence>& records,
                 std::size_t line_width = 60);

/** Write a genome (one record per chromosome) to a file. */
void write_genome_file(const std::string& path, const Genome& genome,
                       std::size_t line_width = 60);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_FASTA_H
