/**
 * @file
 * Persistent 2-bit genome storage: the `.2bit` sidecar cache.
 *
 * A `.2bit` file holds a whole Genome in PackedSequence form, laid out
 * so a reader can mmap it and attach every chromosome without copying
 * a byte:
 *
 *     [PackedHeader]        128 bytes, at offset 0
 *     [chromosome dir]      num_chromosomes x PackedChromEntry
 *     [name blob]           genome + chromosome names, unterminated
 *     per chromosome:
 *       [base words]        ceil(bases/32) x u64, 64-byte aligned
 *       [n-mask words]      ceil(bases/64) x u64, 64-byte aligned
 *
 * The header records the FNV-1a digest of the *source FASTA bytes*
 * (util/digest.h), so `read_genome_packed` can key the sidecar on
 * exactly the input that produced it: matching digest -> mmap reuse,
 * anything else (stale, corrupt, truncated) -> rebuild via tmp+rename.
 * Ingestion parses the mmap'd FASTA straight into packed words — no
 * byte-per-base intermediate ever exists, which is what lets a 100 Mbp
 * assembly load in ~total/4 bytes of heap.
 *
 * All integers little-endian (endian tag checked, never swapped);
 * validation failures are FatalError tagged with path + field, exactly
 * like the `.dwi` reader.
 *
 * Crash-safety checksums: the first 16 reserved header bytes hold two
 * fnv1a64 digests — payload_digest over every byte after the header
 * ([128, total_bytes)) and header_digest over the 128 header bytes
 * with the header_digest field itself zeroed. Both zero means a legacy
 * file (written before checksums existed), which loads unverified;
 * any nonzero pair is verified before a single section byte is
 * trusted, so a torn write or bit flip in the sidecar fails loudly at
 * load instead of corrupting alignments downstream.
 */
#ifndef DARWIN_SEQ_PACKED_IO_H
#define DARWIN_SEQ_PACKED_IO_H

#include <cstdint>
#include <string>
#include <type_traits>

#include "seq/genome.h"

namespace darwin::seq {

/** File magic, first 8 bytes ("DWGA2BT" + NUL). */
inline constexpr char kPackedMagic[8] = {'D', 'W', 'G', 'A',
                                         '2', 'B', 'T', '\0'};

/** Current (and only accepted) `.2bit` format version. */
inline constexpr std::uint32_t kPackedFormatVersion = 1;

/** Same endian tag convention as the `.dwi` format. */
inline constexpr std::uint32_t kPackedEndianTag = 0x1a2b3c4dU;

/** Every word section starts on this alignment. */
inline constexpr std::uint64_t kPackedSectionAlign = 64;

/** Fixed-layout file header. Field offsets are load-bearing. */
struct PackedHeader {
    char magic[8];                 ///< kPackedMagic
    std::uint32_t version;         ///< kPackedFormatVersion
    std::uint32_t endian_tag;      ///< kPackedEndianTag
    std::uint64_t fasta_digest;    ///< fnv1a64 over the source FASTA bytes
    std::uint64_t num_chromosomes;
    std::uint64_t total_bases;     ///< sum of chromosome lengths
    std::uint64_t dir_offset;      ///< chromosome directory
    std::uint64_t names_offset;    ///< name blob
    std::uint64_t names_bytes;     ///< name blob size
    std::uint64_t genome_name_offset;  ///< into the name blob
    std::uint64_t genome_name_length;
    std::uint64_t total_bytes;     ///< exact file size
    /** Bytes [0,8): fnv1a64 payload digest over [128, total_bytes).
     *  Bytes [8,16): fnv1a64 header digest (this field zeroed).
     *  Both zero = legacy file, no verification. Rest: future use. */
    char reserved[40];
};

static_assert(sizeof(PackedHeader) == 128,
              "PackedHeader layout is part of the on-disk format");
static_assert(std::is_trivially_copyable_v<PackedHeader>,
              "PackedHeader must be memcpy-safe");

/** One chromosome directory entry. */
struct PackedChromEntry {
    std::uint64_t name_offset;       ///< into the name blob
    std::uint64_t name_length;
    std::uint64_t num_bases;
    std::uint64_t base_words_offset; ///< absolute, 64-byte aligned
    std::uint64_t n_words_offset;    ///< absolute, 64-byte aligned
    std::uint64_t reserved;          ///< zero
};

static_assert(sizeof(PackedChromEntry) == 48,
              "PackedChromEntry layout is part of the on-disk format");

/** FNV-1a digest of a file's raw bytes — the sidecar cache key. */
std::uint64_t file_content_digest(const std::string& path);

/** Serialize a genome to `path` atomically (tmp + rename). Works for
 *  byte-mode genomes too (packs on the fly). */
void save_packed_genome(const std::string& path, const Genome& genome,
                        std::uint64_t fasta_digest);

/**
 * mmap `path`, validate it, and return a packed Genome whose
 * chromosomes attach to the mapped words (the mapping lives as long as
 * any chromosome copy). When `expected_digest` is non-zero a mismatch
 * is fatal — that is how a caller detects a stale sidecar.
 */
Genome load_packed_genome(const std::string& path,
                          std::uint64_t expected_digest = 0);

/**
 * Read a FASTA as a packed Genome with a `.2bit` sidecar next to it:
 * a sidecar whose digest matches the FASTA bytes is mmap-reused; a
 * missing, stale, or corrupt sidecar is rebuilt by streaming the
 * mmap'd FASTA into packed words and written tmp+rename. Set
 * `sidecar_path` to override the default `<fasta>.2bit` (useful when
 * the FASTA's directory is read-only); empty disables the cache
 * entirely (parse-only).
 */
Genome read_genome_packed(const std::string& fasta_path,
                          const std::string& name = "",
                          const std::string& sidecar_path = "auto");

/** True when `path` exists and starts with the `.2bit` magic. */
bool is_packed_file(const std::string& path);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_PACKED_IO_H
