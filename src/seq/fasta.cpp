#include "seq/fasta.h"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::seq {

std::vector<Sequence>
read_fasta(std::istream& in, const std::string& source)
{
    const std::string where = source.empty() ? "fasta" : source;
    std::vector<Sequence> records;
    std::string line;
    std::string name;
    std::vector<std::uint8_t> codes;
    bool in_record = false;
    std::size_t line_no = 0;
    std::size_t header_line = 0;

    auto flush = [&] {
        if (!in_record)
            return;
        if (codes.empty()) {
            fatal(strprintf("%s:%zu: record '%s' has no sequence data "
                            "(empty or truncated record)",
                            where.c_str(), header_line, name.c_str()));
        }
        records.emplace_back(name, std::move(codes));
        codes = {};
    };

    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == ';')
            continue;
        if (line[0] == '>') {
            flush();
            name = trim(line.substr(1));
            // Use only the first whitespace-delimited token as the name.
            const auto space = name.find_first_of(" \t");
            if (space != std::string::npos)
                name = name.substr(0, space);
            if (name.empty())
                fatal(strprintf("%s:%zu: empty record name",
                                where.c_str(), line_no));
            header_line = line_no;
            in_record = true;
            continue;
        }
        if (!in_record) {
            fatal(strprintf("%s:%zu: sequence data before first '>' header",
                            where.c_str(), line_no));
        }
        for (char c : line) {
            if (std::isspace(static_cast<unsigned char>(c)))
                continue;
            if (!std::isalpha(static_cast<unsigned char>(c))) {
                fatal(strprintf("%s:%zu: invalid character '%c'",
                                where.c_str(), line_no, c));
            }
            if (!is_iupac(c)) {
                fatal(strprintf("%s:%zu: '%c' is not an IUPAC nucleotide "
                                "code (corrupt or non-DNA file?)",
                                where.c_str(), line_no, c));
            }
            codes.push_back(encode_base(c));
        }
    }
    if (in.bad()) {
        fatal(strprintf("%s:%zu: read error (truncated file?)",
                        where.c_str(), line_no));
    }
    flush();
    return records;
}

std::vector<Sequence>
read_fasta_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("fasta: cannot open file: " + path);
    return read_fasta(in, path);
}

Genome
read_genome(const std::string& path, const std::string& name)
{
    Genome genome(name.empty() ? path : name);
    for (auto& record : read_fasta_file(path))
        genome.add_chromosome(std::move(record));
    if (genome.num_chromosomes() == 0)
        fatal("fasta: no records in file: " + path);
    return genome;
}

void
write_fasta(std::ostream& out, const std::vector<Sequence>& records,
            std::size_t line_width)
{
    require(line_width > 0, "write_fasta: line width must be positive");
    for (const auto& record : records) {
        out << '>' << record.name() << '\n';
        const std::string bases = record.to_string();
        for (std::size_t pos = 0; pos < bases.size(); pos += line_width) {
            out << bases.substr(pos, line_width) << '\n';
        }
    }
}

void
write_genome_file(const std::string& path, const Genome& genome,
                  std::size_t line_width)
{
    std::ofstream out(path);
    if (!out)
        fatal("fasta: cannot write file: " + path);
    write_fasta(out, genome.chromosomes(), line_width);
}

}  // namespace darwin::seq
