#include "seq/shuffle.h"

#include <algorithm>
#include <array>

#include "util/logging.h"

namespace darwin::seq {

namespace {

/**
 * Altschul-Erikson doublet shuffle.
 *
 * Model the sequence as an Eulerian path in a multigraph whose vertices
 * are the symbols and whose edges are the consecutive pairs. Pick, for
 * every vertex other than the final symbol, a random outgoing edge to
 * serve as that vertex's *last* departure; the choice is valid iff the
 * chosen edges form an arborescence into the final vertex. Shuffle the
 * remaining edges of each vertex freely and walk the path.
 */
class DoubletShuffler {
  public:
    DoubletShuffler(const std::vector<std::uint8_t>& codes, Rng& rng)
        : codes_(codes), rng_(rng)
    {
    }

    std::vector<std::uint8_t>
    run()
    {
        const std::size_t n = codes_.size();
        for (auto& edges : successors_)
            edges.clear();
        for (std::size_t i = 0; i + 1 < n; ++i)
            successors_[codes_[i]].push_back(codes_[i + 1]);

        const std::uint8_t first = codes_.front();
        const std::uint8_t last = codes_.back();

        // Choose last-edge targets until they form an arborescence into
        // `last`. Expected number of attempts is small (bounded by the
        // number of distinct symbols).
        std::array<int, kNumCodes> last_edge{};
        for (;;) {
            last_edge.fill(-1);
            for (int v = 0; v < kNumCodes; ++v) {
                if (v == last || successors_[v].empty())
                    continue;
                const std::size_t pick =
                    rng_.uniform(successors_[v].size());
                last_edge[static_cast<std::size_t>(v)] =
                    successors_[v][pick];
            }
            if (reaches_sink(last_edge, last))
                break;
        }

        // Remove one instance of each chosen last edge, shuffle the rest,
        // and re-append the last edge.
        for (int v = 0; v < kNumCodes; ++v) {
            auto& edges = successors_[v];
            const int chosen = last_edge[static_cast<std::size_t>(v)];
            if (chosen >= 0) {
                auto it = std::find(edges.begin(), edges.end(),
                                    static_cast<std::uint8_t>(chosen));
                require(it != edges.end(),
                        "doublet shuffle: chosen edge missing");
                edges.erase(it);
            }
            std::shuffle(edges.begin(), edges.end(), rng_);
            if (chosen >= 0)
                edges.push_back(static_cast<std::uint8_t>(chosen));
        }

        // Walk the Eulerian path.
        std::vector<std::uint8_t> out;
        out.reserve(n);
        out.push_back(first);
        std::array<std::size_t, kNumCodes> cursor{};
        std::uint8_t v = first;
        while (out.size() < n) {
            auto& edges = successors_[v];
            require(cursor[v] < edges.size(),
                    "doublet shuffle: ran out of edges");
            const std::uint8_t w = edges[cursor[v]++];
            out.push_back(w);
            v = w;
        }
        return out;
    }

  private:
    /** True if following the chosen last edges from every active vertex
     *  reaches `sink`. */
    bool
    reaches_sink(const std::array<int, kNumCodes>& last_edge,
                 std::uint8_t sink) const
    {
        for (int v = 0; v < kNumCodes; ++v) {
            if (v == sink || successors_[v].empty())
                continue;
            int cur = v;
            int steps = 0;
            while (cur != sink && steps <= kNumCodes) {
                cur = last_edge[static_cast<std::size_t>(cur)];
                if (cur < 0)
                    break;
                // A vertex with no outgoing edges can still be the sink.
                ++steps;
            }
            if (cur != sink)
                return false;
        }
        return true;
    }

    const std::vector<std::uint8_t>& codes_;
    Rng& rng_;
    std::array<std::vector<std::uint8_t>, kNumCodes> successors_;
};

}  // namespace

Sequence
dinucleotide_shuffle(const Sequence& input, Rng& rng)
{
    if (input.size() < 3)
        return input;
    DoubletShuffler shuffler(input.codes(), rng);
    return Sequence(input.name() + ":shuffled", shuffler.run());
}

Genome
shuffle_genome(const Genome& genome, Rng& rng)
{
    Genome out(genome.name() + ":shuffled");
    for (const auto& chrom : genome.chromosomes())
        out.add_chromosome(dinucleotide_shuffle(chrom, rng));
    return out;
}

}  // namespace darwin::seq
