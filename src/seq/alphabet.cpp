#include "seq/alphabet.h"

namespace darwin::seq {

namespace {

constexpr char kDecode[kNumCodes] = {'A', 'C', 'G', 'T', 'N'};

}  // namespace

std::uint8_t
encode_base(char c)
{
    switch (c) {
      case 'A': case 'a': return BaseA;
      case 'C': case 'c': return BaseC;
      case 'G': case 'g': return BaseG;
      case 'T': case 't': return BaseT;
      default:            return BaseN;
    }
}

bool
is_iupac(char c)
{
    switch (c) {
      case 'A': case 'a': case 'C': case 'c': case 'G': case 'g':
      case 'T': case 't': case 'U': case 'u': case 'N': case 'n':
      case 'R': case 'r': case 'Y': case 'y': case 'S': case 's':
      case 'W': case 'w': case 'K': case 'k': case 'M': case 'm':
      case 'B': case 'b': case 'D': case 'd': case 'H': case 'h':
      case 'V': case 'v':
        return true;
      default:
        return false;
    }
}

char
decode_base(std::uint8_t code)
{
    return code < kNumCodes ? kDecode[code] : 'N';
}

std::uint8_t
complement(std::uint8_t code)
{
    switch (code) {
      case BaseA: return BaseT;
      case BaseC: return BaseG;
      case BaseG: return BaseC;
      case BaseT: return BaseA;
      default:    return BaseN;
    }
}

std::uint8_t
transition_partner(std::uint8_t code)
{
    switch (code) {
      case BaseA: return BaseG;
      case BaseG: return BaseA;
      case BaseC: return BaseT;
      case BaseT: return BaseC;
      default:    return BaseN;
    }
}

bool
is_transition(std::uint8_t a, std::uint8_t b)
{
    return a != b && is_concrete(a) && is_concrete(b) &&
           transition_partner(a) == b;
}

bool
is_transversion(std::uint8_t a, std::uint8_t b)
{
    return a != b && is_concrete(a) && is_concrete(b) &&
           transition_partner(a) != b;
}

}  // namespace darwin::seq
