/**
 * @file
 * The DNA alphabet used throughout Darwin-WGA.
 *
 * Bases are stored as small integer codes (A=0, C=1, G=2, T=3, N=4), the
 * same 3-bit-per-base encoding the paper's hardware uses in its BRAMs
 * (Section IV). Transitions (A<->G, T<->C) get first-class support because
 * both the seed patterns (Fig. 5) and the evolution model treat them
 * specially.
 */
#ifndef DARWIN_SEQ_ALPHABET_H
#define DARWIN_SEQ_ALPHABET_H

#include <cstdint>

namespace darwin::seq {

/** Integer base codes. N covers every ambiguous IUPAC letter. */
enum Base : std::uint8_t {
    BaseA = 0,
    BaseC = 1,
    BaseG = 2,
    BaseT = 3,
    BaseN = 4,
};

/** Number of unambiguous bases. */
inline constexpr int kNumBases = 4;

/** Number of codes including N. */
inline constexpr int kNumCodes = 5;

/** Encode an ASCII base (case-insensitive); anything unknown becomes N. */
std::uint8_t encode_base(char c);

/**
 * True for letters the FASTA parser accepts: the IUPAC nucleotide codes
 * ACGTUN plus the ambiguity letters RYSWKMBDHV (case-insensitive). All
 * non-ACGT letters still encode to N; this only gates what counts as a
 * legal input byte versus file corruption.
 */
bool is_iupac(char c);

/** Decode a base code to an upper-case ASCII letter. */
char decode_base(std::uint8_t code);

/** Watson-Crick complement; N maps to N. */
std::uint8_t complement(std::uint8_t code);

/** True for the A,C,G,T codes (i.e., not N). */
inline bool
is_concrete(std::uint8_t code)
{
    return code < kNumBases;
}

/**
 * The transition partner of a base: A<->G, C<->T. N maps to N.
 * Transitions are purine<->purine / pyrimidine<->pyrimidine substitutions
 * and occur at higher-than-random frequency in real genomes.
 */
std::uint8_t transition_partner(std::uint8_t code);

/** True when a != b and the pair is a transition (A/G or C/T). */
bool is_transition(std::uint8_t a, std::uint8_t b);

/** True when a != b, both concrete, and the pair is not a transition. */
bool is_transversion(std::uint8_t a, std::uint8_t b);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_ALPHABET_H
