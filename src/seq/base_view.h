/**
 * @file
 * BaseView: a non-owning view of DNA base codes backed by either a
 * byte-per-base span or a 2-bit PackedSequence.
 *
 * The filter and extension stages only ever touch bases through small
 * windows (a filter tile, an extension tile, a stitched alignment's
 * span). BaseView lets those stages run over packed storage without a
 * whole-sequence decode: `materialize` returns the backing span
 * directly in byte mode (zero-copy, the historical fast path) and
 * decodes just the requested window into caller scratch in packed
 * mode. Decoded bytes are bit-identical to the byte representation
 * (N decodes to BaseN), so every downstream kernel result is
 * unchanged by the backing choice.
 */
#ifndef DARWIN_SEQ_BASE_VIEW_H
#define DARWIN_SEQ_BASE_VIEW_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "seq/packed_sequence.h"

namespace darwin::seq {

/** A byte-span- or packed-backed window of base codes. */
class BaseView {
  public:
    BaseView() = default;

    /*implicit*/ BaseView(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {
    }

    /*implicit*/ BaseView(const PackedSequence& packed) : packed_(&packed) {}

    std::size_t
    size() const
    {
        return packed_ ? packed_->size() : bytes_.size();
    }

    bool packed() const { return packed_ != nullptr; }

    /** The backing PackedSequence (nullptr in byte mode). */
    const PackedSequence* packed_sequence() const { return packed_; }

    /** The backing byte span (empty in packed mode). */
    std::span<const std::uint8_t> bytes() const { return bytes_; }

    std::uint8_t
    operator[](std::size_t i) const
    {
        return packed_ ? (*packed_)[i] : bytes_[i];
    }

    /** Copy/decode [start, start+len) forward into `out` (resized). */
    void
    fetch(std::size_t start, std::size_t len,
          std::vector<std::uint8_t>* out) const
    {
        out->resize(len);
        if (packed_) {
            packed_->decode(start, len, out->data());
        } else {
            std::copy_n(bytes_.data() + start, len, out->data());
        }
    }

    /** Copy/decode the reversed slice [end-len, end) into `out`:
     *  out[k] = base(end - 1 - k). */
    void
    fetch_reversed(std::size_t end, std::size_t len,
                   std::vector<std::uint8_t>* out) const
    {
        fetch(end - len, len, out);
        std::reverse(out->begin(), out->end());
    }

    /**
     * A byte span over [start, start+len): the backing span itself in
     * byte mode (zero-copy; `scratch` untouched), a decode into
     * `scratch` in packed mode. The span is valid while the backing
     * storage and `scratch` are.
     */
    std::span<const std::uint8_t>
    materialize(std::size_t start, std::size_t len,
                std::vector<std::uint8_t>* scratch) const
    {
        if (!packed_)
            return bytes_.subspan(start, len);
        scratch->resize(len);
        packed_->decode(start, len, scratch->data());
        return {scratch->data(), len};
    }

  private:
    std::span<const std::uint8_t> bytes_;
    const PackedSequence* packed_ = nullptr;
};

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_BASE_VIEW_H
