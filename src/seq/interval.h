/**
 * @file
 * Half-open genomic intervals and coverage arithmetic.
 *
 * Used by the exon-recovery evaluation (which intersects chain footprints
 * with planted conserved segments) and by anchor-absorption bookkeeping.
 */
#ifndef DARWIN_SEQ_INTERVAL_H
#define DARWIN_SEQ_INTERVAL_H

#include <cstdint>
#include <vector>

namespace darwin::seq {

/** A half-open interval [start, end) on one sequence. */
struct Interval {
    std::uint64_t start = 0;
    std::uint64_t end = 0;

    std::uint64_t length() const { return end > start ? end - start : 0; }
    bool empty() const { return end <= start; }

    bool operator==(const Interval&) const = default;
};

/** Length of the intersection of two intervals. */
std::uint64_t intersection_length(const Interval& a, const Interval& b);

/** Sort and merge overlapping/adjacent intervals. */
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/** Total length of a (possibly overlapping) interval set after merging. */
std::uint64_t covered_length(std::vector<Interval> intervals);

/**
 * Fraction of `target` covered by the union of `cover`.
 * Returns 0 for an empty target.
 */
double coverage_fraction(const Interval& target,
                         const std::vector<Interval>& cover);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_INTERVAL_H
