#include "seq/sequence.h"

#include <algorithm>

#include "util/logging.h"

namespace darwin::seq {

Sequence::Sequence(std::string name, const std::string& bases)
    : name_(std::move(name)), codes_(encode_string(bases))
{
}

Sequence::Sequence(std::string name, std::vector<std::uint8_t> codes)
    : name_(std::move(name)), codes_(std::move(codes))
{
}

std::uint8_t
Sequence::at(std::size_t i) const
{
    require(i < codes_.size(), "Sequence::at: index out of range");
    return codes_[i];
}

std::span<const std::uint8_t>
Sequence::view(std::size_t start, std::size_t end) const
{
    end = std::min(end, codes_.size());
    start = std::min(start, end);
    return {codes_.data() + start, end - start};
}

Sequence
Sequence::subsequence(std::size_t start, std::size_t len,
                      const std::string& name) const
{
    start = std::min(start, codes_.size());
    len = std::min(len, codes_.size() - start);
    std::vector<std::uint8_t> codes(codes_.begin() + start,
                                    codes_.begin() + start + len);
    return Sequence(name.empty() ? name_ + ":sub" : name, std::move(codes));
}

Sequence
Sequence::reverse_complement() const
{
    std::vector<std::uint8_t> codes(codes_.size());
    for (std::size_t i = 0; i < codes_.size(); ++i)
        codes[codes_.size() - 1 - i] = complement(codes_[i]);
    return Sequence(name_ + ":rc", std::move(codes));
}

std::string
Sequence::to_string() const
{
    return to_string(0, codes_.size());
}

std::string
Sequence::to_string(std::size_t start, std::size_t end) const
{
    end = std::min(end, codes_.size());
    start = std::min(start, end);
    std::string out;
    out.reserve(end - start);
    for (std::size_t i = start; i < end; ++i)
        out.push_back(decode_base(codes_[i]));
    return out;
}

std::vector<std::uint64_t>
Sequence::base_counts() const
{
    std::vector<std::uint64_t> counts(kNumCodes, 0);
    for (std::uint8_t c : codes_)
        ++counts[std::min<std::uint8_t>(c, BaseN)];
    return counts;
}

double
Sequence::n_fraction() const
{
    if (codes_.empty())
        return 0.0;
    const auto counts = base_counts();
    return static_cast<double>(counts[BaseN]) /
           static_cast<double>(codes_.size());
}

std::vector<std::uint8_t>
encode_string(const std::string& bases)
{
    std::vector<std::uint8_t> codes;
    codes.reserve(bases.size());
    for (char c : bases)
        codes.push_back(encode_base(c));
    return codes;
}

}  // namespace darwin::seq
