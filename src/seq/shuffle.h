/**
 * @file
 * Dinucleotide-preserving sequence shuffle.
 *
 * The paper's false-positive-rate analysis (Section V-E) builds a null
 * model by shuffling the target genome while preserving its 2-mer
 * statistics ("fasta-shuffle-letters" with 2-mers). We implement the exact
 * Altschul-Erikson doublet shuffle: the result has *identical* dinucleotide
 * counts to the input but is otherwise a uniformly random Eulerian
 * rearrangement, so any alignment against it is a false positive.
 */
#ifndef DARWIN_SEQ_SHUFFLE_H
#define DARWIN_SEQ_SHUFFLE_H

#include "seq/genome.h"
#include "seq/sequence.h"
#include "util/rng.h"

namespace darwin::seq {

/**
 * Shuffle a sequence while preserving its exact dinucleotide counts.
 * The first and last bases of the result match the input (a property of
 * the Euler-path construction). Sequences of length < 3 are returned
 * unchanged.
 */
Sequence dinucleotide_shuffle(const Sequence& input, Rng& rng);

/** Apply dinucleotide_shuffle to every chromosome of a genome. */
Genome shuffle_genome(const Genome& genome, Rng& rng);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_SHUFFLE_H
