#include "seq/interval.h"

#include <algorithm>

namespace darwin::seq {

std::uint64_t
intersection_length(const Interval& a, const Interval& b)
{
    const std::uint64_t lo = std::max(a.start, b.start);
    const std::uint64_t hi = std::min(a.end, b.end);
    return hi > lo ? hi - lo : 0;
}

std::vector<Interval>
merge_intervals(std::vector<Interval> intervals)
{
    intervals.erase(std::remove_if(intervals.begin(), intervals.end(),
                                   [](const Interval& iv) {
                                       return iv.empty();
                                   }),
                    intervals.end());
    std::sort(intervals.begin(), intervals.end(),
              [](const Interval& a, const Interval& b) {
                  return a.start < b.start;
              });
    std::vector<Interval> merged;
    for (const auto& iv : intervals) {
        if (!merged.empty() && iv.start <= merged.back().end) {
            merged.back().end = std::max(merged.back().end, iv.end);
        } else {
            merged.push_back(iv);
        }
    }
    return merged;
}

std::uint64_t
covered_length(std::vector<Interval> intervals)
{
    std::uint64_t total = 0;
    for (const auto& iv : merge_intervals(std::move(intervals)))
        total += iv.length();
    return total;
}

double
coverage_fraction(const Interval& target, const std::vector<Interval>& cover)
{
    if (target.empty())
        return 0.0;
    std::uint64_t overlap = 0;
    for (const auto& iv : merge_intervals(cover))
        overlap += intersection_length(target, iv);
    return static_cast<double>(overlap) /
           static_cast<double>(target.length());
}

}  // namespace darwin::seq
