/**
 * @file
 * Genome: an ordered collection of chromosomes with a flattened coordinate
 * space.
 *
 * The WGA pipeline indexes the *flattened* target (chromosomes
 * concatenated, separated by runs of N so no seed can straddle a boundary)
 * and later maps flat positions back to (chromosome, offset) pairs for
 * reporting. This mirrors how whole-genome aligners treat multi-contig
 * assemblies.
 *
 * A genome stores its chromosomes either byte-per-base (the historical
 * mode, kept for small inputs and existing callers) or 2-bit packed
 * (PackedSequence, the bounded-memory mode behind large-genome runs).
 * The two modes never mix within one genome. Coordinate queries
 * (flat_offset / resolve / flat_length) work in both modes without
 * materializing any bases; byte accessors on a packed genome decode
 * lazily into caches that release_decoded() can drop.
 */
#ifndef DARWIN_SEQ_GENOME_H
#define DARWIN_SEQ_GENOME_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "seq/packed_sequence.h"
#include "seq/sequence.h"

namespace darwin::seq {

/** A position resolved to a chromosome. */
struct GenomePosition {
    std::size_t chromosome = 0;  ///< index into chromosomes()
    std::size_t offset = 0;      ///< 0-based offset within the chromosome
};

/** A multi-chromosome genome assembly. */
class Genome {
  public:
    Genome() = default;
    explicit Genome(std::string name) : name_(std::move(name)) {}

    // Copies carry the stored chromosomes but start with cold caches
    // (the lazily decoded byte views are unique_ptr-held and rebuild on
    // demand; copying them would defeat release_decoded()).
    Genome(const Genome& other) { *this = other; }

    Genome&
    operator=(const Genome& other)
    {
        if (this == &other)
            return *this;
        name_ = other.name_;
        packed_mode_ = other.packed_mode_;
        chromosomes_ = other.chromosomes_;
        packed_chromosomes_ = other.packed_chromosomes_;
        decoded_.clear();
        flat_ = Sequence();
        flat_valid_ = false;
        packed_flat_ = PackedSequence();
        packed_flat_valid_ = false;
        flat_offsets_.clear();
        flat_length_ = 0;
        offsets_valid_ = false;
        return *this;
    }

    Genome(Genome&&) = default;
    Genome& operator=(Genome&&) = default;

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /** Append a byte-mode chromosome; returns its index. */
    std::size_t add_chromosome(Sequence chromosome);

    /** Append a packed chromosome; returns its index. A genome is
     *  either all-byte or all-packed — mixing is a fatal error. */
    std::size_t add_chromosome(PackedSequence chromosome);

    /** True when chromosomes are stored 2-bit packed. */
    bool packed() const { return packed_mode_; }

    std::size_t num_chromosomes() const;

    /** Chromosome name/length without materializing bases (any mode). */
    const std::string& chromosome_name(std::size_t i) const;
    std::size_t chromosome_length(std::size_t i) const;

    /** Byte-mode accessor; on a packed genome decodes lazily (cached
     *  until release_decoded()). */
    const Sequence& chromosome(std::size_t i) const;

    /** Byte-mode chromosome vector. Fatal on a packed genome — callers
     *  that only need names/lengths should use the accessors above. */
    const std::vector<Sequence>& chromosomes() const;

    /** Packed accessor; fatal on a byte-mode genome. */
    const PackedSequence& packed_chromosome(std::size_t i) const;
    const std::vector<PackedSequence>& packed_chromosomes() const;

    /** Total bases across all chromosomes (no separators). */
    std::size_t total_length() const;

    /** Flattened length including separators; never materializes. */
    std::size_t flat_length() const;

    /**
     * Flattened byte sequence: chromosomes joined by separator_length()
     * Ns. Rebuilt lazily; invalidated by add_chromosome(). On a packed
     * genome this decodes the whole assembly — prefer
     * flattened_packed() there.
     */
    const Sequence& flattened() const;

    /**
     * Flattened 2-bit sequence. On a packed genome this concatenates
     * packed words without ever decoding; on a byte genome it packs
     * flattened(). Cached lazily.
     */
    const PackedSequence& flattened_packed() const;

    /** Drop lazily decoded byte caches (packed mode only; byte-mode
     *  storage is never touched). */
    void release_decoded() const;

    /** Number of N separators inserted between chromosomes when
     *  flattening. 256 Ns cost -25,600 under the paper matrix — far
     *  beyond the GACT-X X-drop bound (Y = 9,430), so no extension can
     *  ever cross a chromosome boundary. */
    static constexpr std::size_t separator_length() { return 256; }

    /** Flat start offset of a chromosome within flattened(). */
    std::size_t flat_offset(std::size_t chromosome_index) const;

    /**
     * Map a flat position back to (chromosome, offset). Positions inside a
     * separator resolve to the *following* chromosome at offset 0 with
     * in_separator set.
     */
    GenomePosition resolve(std::size_t flat_position,
                           bool* in_separator = nullptr) const;

  private:
    void rebuild_flat() const;
    void ensure_offsets() const;

    std::string name_;
    bool packed_mode_ = false;
    std::vector<Sequence> chromosomes_;
    std::vector<PackedSequence> packed_chromosomes_;
    // Lazily decoded byte views of packed chromosomes (packed mode).
    mutable std::vector<std::unique_ptr<Sequence>> decoded_;
    mutable Sequence flat_;
    mutable bool flat_valid_ = false;
    mutable PackedSequence packed_flat_;
    mutable bool packed_flat_valid_ = false;
    // Coordinate tables, derived from lengths alone (no bases).
    mutable std::vector<std::size_t> flat_offsets_;
    mutable std::size_t flat_length_ = 0;
    mutable bool offsets_valid_ = false;
};

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_GENOME_H
