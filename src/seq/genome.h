/**
 * @file
 * Genome: an ordered collection of chromosomes with a flattened coordinate
 * space.
 *
 * The WGA pipeline indexes the *flattened* target (chromosomes
 * concatenated, separated by runs of N so no seed can straddle a boundary)
 * and later maps flat positions back to (chromosome, offset) pairs for
 * reporting. This mirrors how whole-genome aligners treat multi-contig
 * assemblies.
 */
#ifndef DARWIN_SEQ_GENOME_H
#define DARWIN_SEQ_GENOME_H

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence.h"

namespace darwin::seq {

/** A position resolved to a chromosome. */
struct GenomePosition {
    std::size_t chromosome = 0;  ///< index into chromosomes()
    std::size_t offset = 0;      ///< 0-based offset within the chromosome
};

/** A multi-chromosome genome assembly. */
class Genome {
  public:
    Genome() = default;
    explicit Genome(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    /** Append a chromosome; returns its index. */
    std::size_t add_chromosome(Sequence chromosome);

    std::size_t num_chromosomes() const { return chromosomes_.size(); }
    const Sequence& chromosome(std::size_t i) const;
    const std::vector<Sequence>& chromosomes() const { return chromosomes_; }

    /** Total bases across all chromosomes (no separators). */
    std::size_t total_length() const;

    /**
     * Flattened sequence: chromosomes joined by separator_length() Ns.
     * Rebuilt lazily; invalidated by add_chromosome().
     */
    const Sequence& flattened() const;

    /** Number of N separators inserted between chromosomes when
     *  flattening. 256 Ns cost -25,600 under the paper matrix — far
     *  beyond the GACT-X X-drop bound (Y = 9,430), so no extension can
     *  ever cross a chromosome boundary. */
    static constexpr std::size_t separator_length() { return 256; }

    /** Flat start offset of a chromosome within flattened(). */
    std::size_t flat_offset(std::size_t chromosome_index) const;

    /**
     * Map a flat position back to (chromosome, offset). Positions inside a
     * separator resolve to the *following* chromosome at offset 0 with
     * in_separator set.
     */
    GenomePosition resolve(std::size_t flat_position,
                           bool* in_separator = nullptr) const;

  private:
    void rebuild_flat() const;

    std::string name_;
    std::vector<Sequence> chromosomes_;
    mutable Sequence flat_;
    mutable std::vector<std::size_t> flat_offsets_;
    mutable bool flat_valid_ = false;
};

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_GENOME_H
