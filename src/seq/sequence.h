/**
 * @file
 * Sequence: a named DNA sequence stored as base codes.
 *
 * This is the fundamental container the aligners operate on. Positions are
 * 0-based; subsequence ranges are half-open [start, end).
 */
#ifndef DARWIN_SEQ_SEQUENCE_H
#define DARWIN_SEQ_SEQUENCE_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "seq/alphabet.h"

namespace darwin::seq {

/** A named, code-encoded DNA sequence. */
class Sequence {
  public:
    Sequence() = default;

    /** Construct from a name and ASCII bases. */
    Sequence(std::string name, const std::string& bases);

    /** Construct from a name and pre-encoded codes. */
    Sequence(std::string name, std::vector<std::uint8_t> codes);

    const std::string& name() const { return name_; }
    void set_name(std::string name) { name_ = std::move(name); }

    std::size_t size() const { return codes_.size(); }
    bool empty() const { return codes_.empty(); }

    /** Base code at position i (unchecked in release hot paths). */
    std::uint8_t operator[](std::size_t i) const { return codes_[i]; }

    /** Checked accessor used by non-hot-path callers. */
    std::uint8_t at(std::size_t i) const;

    const std::vector<std::uint8_t>& codes() const { return codes_; }
    std::vector<std::uint8_t>& codes() { return codes_; }

    /** Read-only view over [start, end); clamps end to size(). */
    std::span<const std::uint8_t> view(std::size_t start,
                                       std::size_t end) const;

    /** Copy of the subsequence [start, start+len) as a new Sequence. */
    Sequence subsequence(std::size_t start, std::size_t len,
                         const std::string& name = "") const;

    /** Reverse complement as a new Sequence. */
    Sequence reverse_complement() const;

    /** Decode the whole sequence to an ASCII string. */
    std::string to_string() const;

    /** Decode [start, end) to ASCII. */
    std::string to_string(std::size_t start, std::size_t end) const;

    /** Append a single base code. */
    void push_back(std::uint8_t code) { codes_.push_back(code); }

    /** Count of each base code in the sequence. */
    std::vector<std::uint64_t> base_counts() const;

    /** Fraction of positions that are N. */
    double n_fraction() const;

  private:
    std::string name_;
    std::vector<std::uint8_t> codes_;
};

/** Encode an ASCII string of bases into codes. */
std::vector<std::uint8_t> encode_string(const std::string& bases);

}  // namespace darwin::seq

#endif  // DARWIN_SEQ_SEQUENCE_H
