#include "seq/packed_io.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "seq/alphabet.h"
#include "util/digest.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::seq {

namespace {

/** RAII owner of one read-only mapping; the shared_ptr keepalive that
 *  attached chromosomes hold. */
class Mapping {
  public:
    Mapping(void* data, std::size_t size) : data_(data), size_(size) {}

    ~Mapping()
    {
        if (data_ != nullptr)
            ::munmap(data_, size_);
    }

    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;

    const std::uint8_t*
    bytes() const
    {
        return static_cast<const std::uint8_t*>(data_);
    }

    std::size_t size() const { return size_; }

  private:
    void* data_;
    std::size_t size_;
};

std::shared_ptr<Mapping>
map_file(const std::string& path, const char* what)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fatal(strprintf("cannot open %s %s: %s", what, path.c_str(),
                        std::strerror(errno)));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strprintf("cannot stat %s %s: %s", what, path.c_str(),
                        std::strerror(err)));
    }
    const auto file_size = static_cast<std::size_t>(st.st_size);
    if (file_size == 0) {
        ::close(fd);
        fatal(strprintf("%s: empty %s file", path.c_str(), what));
    }
    void* data = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int map_err = errno;
    ::close(fd);  // the mapping keeps its own reference
    if (data == MAP_FAILED)
        fatal(strprintf("cannot mmap %s %s: %s", what, path.c_str(),
                        std::strerror(map_err)));
    return std::make_shared<Mapping>(data, file_size);
}

[[noreturn]] void
bad_packed(const std::string& path, const std::string& what)
{
    fatal(strprintf("%s: %s", path.c_str(), what.c_str()));
}

void
write_padding(std::ofstream& out, std::uint64_t current,
              std::uint64_t target)
{
    static const char zeros[kPackedSectionAlign] = {};
    while (current < target) {
        const std::uint64_t n =
            std::min<std::uint64_t>(target - current, sizeof(zeros));
        out.write(zeros, static_cast<std::streamsize>(n));
        current += n;
    }
}

constexpr std::uint64_t
align_up(std::uint64_t offset)
{
    return (offset + kPackedSectionAlign - 1) & ~(kPackedSectionAlign - 1);
}

/**
 * Parse mmap'd FASTA bytes straight into packed chromosomes — same
 * acceptance rules and diagnostics as seq/fasta.cpp's read_fasta, but
 * no byte-per-base intermediate is ever allocated.
 */
Genome
parse_fasta_packed(const std::uint8_t* data, std::size_t size,
                   const std::string& where, const std::string& name)
{
    Genome genome(name);
    PackedSequence current;
    std::string current_name;
    bool in_record = false;
    std::size_t header_line = 0;
    std::size_t line_no = 0;
    std::size_t pos = 0;

    auto flush = [&] {
        if (!in_record)
            return;
        if (current.empty()) {
            fatal(strprintf("%s:%zu: record '%s' has no sequence data "
                            "(empty or truncated record)",
                            where.c_str(), header_line,
                            current_name.c_str()));
        }
        current.set_name(current_name);
        genome.add_chromosome(std::move(current));
        current = PackedSequence();
    };

    while (pos < size) {
        ++line_no;
        std::size_t end = pos;
        while (end < size && data[end] != '\n')
            ++end;
        std::size_t line_end = end;
        if (line_end > pos && data[line_end - 1] == '\r')
            --line_end;
        const char* line = reinterpret_cast<const char*>(data + pos);
        const std::size_t len = line_end - pos;
        pos = (end < size) ? end + 1 : end;
        if (len == 0 || line[0] == ';')
            continue;
        if (line[0] == '>') {
            flush();
            std::string header = trim(std::string(line + 1, len - 1));
            const auto space = header.find_first_of(" \t");
            if (space != std::string::npos)
                header = header.substr(0, space);
            if (header.empty())
                fatal(strprintf("%s:%zu: empty record name",
                                where.c_str(), line_no));
            current_name = std::move(header);
            header_line = line_no;
            in_record = true;
            continue;
        }
        if (!in_record) {
            fatal(strprintf("%s:%zu: sequence data before first '>' header",
                            where.c_str(), line_no));
        }
        for (std::size_t i = 0; i < len; ++i) {
            const char c = line[i];
            if (std::isspace(static_cast<unsigned char>(c)))
                continue;
            if (!std::isalpha(static_cast<unsigned char>(c))) {
                fatal(strprintf("%s:%zu: invalid character '%c'",
                                where.c_str(), line_no, c));
            }
            if (!is_iupac(c)) {
                fatal(strprintf("%s:%zu: '%c' is not an IUPAC nucleotide "
                                "code (corrupt or non-DNA file?)",
                                where.c_str(), line_no, c));
            }
            current.append_code(encode_base(c));
        }
    }
    flush();
    if (genome.num_chromosomes() == 0)
        fatal("fasta: no records in file: " + where);
    return genome;
}

}  // namespace

std::uint64_t
file_content_digest(const std::string& path)
{
    const auto mapping = map_file(path, "file");
    return fnv1a64_bytes({mapping->bytes(), mapping->size()});
}

void
save_packed_genome(const std::string& path, const Genome& genome,
                   std::uint64_t fasta_digest)
{
    const std::size_t n = genome.num_chromosomes();

    // Byte-mode genomes are packed chromosome-at-a-time on the fly;
    // packed genomes write their words directly.
    std::vector<PackedSequence> transient;
    const auto packed_of = [&](std::size_t i) -> const PackedSequence& {
        if (genome.packed())
            return genome.packed_chromosome(i);
        return transient[i];
    };
    if (!genome.packed()) {
        transient.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            transient.push_back(PackedSequence::pack(genome.chromosome(i)));
    }

    std::string names = genome.name();
    PackedHeader header = {};
    std::memcpy(header.magic, kPackedMagic, sizeof(kPackedMagic));
    header.version = kPackedFormatVersion;
    header.endian_tag = kPackedEndianTag;
    header.fasta_digest = fasta_digest;
    header.num_chromosomes = n;
    header.total_bases = genome.total_length();
    header.genome_name_offset = 0;
    header.genome_name_length = genome.name().size();

    std::vector<PackedChromEntry> dir(n);
    for (std::size_t i = 0; i < n; ++i) {
        dir[i].name_offset = names.size();
        dir[i].name_length = genome.chromosome_name(i).size();
        dir[i].num_bases = genome.chromosome_length(i);
        names += genome.chromosome_name(i);
    }
    header.dir_offset = sizeof(PackedHeader);
    header.names_offset =
        header.dir_offset + n * sizeof(PackedChromEntry);
    header.names_bytes = names.size();
    std::uint64_t cursor = align_up(header.names_offset + names.size());
    for (std::size_t i = 0; i < n; ++i) {
        const PackedSequence& chrom = packed_of(i);
        dir[i].base_words_offset = cursor;
        cursor = align_up(cursor + chrom.num_base_words() * 8);
        dir[i].n_words_offset = cursor;
        cursor = align_up(cursor + chrom.num_n_words() * 8);
    }
    header.total_bytes = cursor;

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            fatal(strprintf("cannot write %s", tmp.c_str()));
        const auto write_bytes = [&out](const void* data,
                                        std::uint64_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        write_bytes(&header, sizeof(header));
        write_bytes(dir.data(), dir.size() * sizeof(PackedChromEntry));
        write_bytes(names.data(), names.size());
        std::uint64_t written = header.names_offset + names.size();
        for (std::size_t i = 0; i < n; ++i) {
            const PackedSequence& chrom = packed_of(i);
            write_padding(out, written, dir[i].base_words_offset);
            write_bytes(chrom.base_words(), chrom.num_base_words() * 8);
            written = dir[i].base_words_offset + chrom.num_base_words() * 8;
            write_padding(out, written, dir[i].n_words_offset);
            write_bytes(chrom.n_words(), chrom.num_n_words() * 8);
            written = dir[i].n_words_offset + chrom.num_n_words() * 8;
        }
        write_padding(out, written, header.total_bytes);
        out.flush();
        if (!out)
            fatal(strprintf("error writing %s", tmp.c_str()));
    }
    // Checksum post-pass: hash the payload we just wrote, patch the two
    // digests into the header's reserved bytes, and only then publish.
    {
        const auto mapping = map_file(tmp, "packed genome");
        if (mapping->size() != header.total_bytes)
            fatal(strprintf("%s: short write (%zu of %llu bytes)",
                            tmp.c_str(), mapping->size(),
                            static_cast<unsigned long long>(
                                header.total_bytes)));
        const std::uint64_t payload_digest = fnv1a64_bytes(
            {mapping->bytes() + sizeof(PackedHeader),
             header.total_bytes - sizeof(PackedHeader)});
        std::memcpy(header.reserved, &payload_digest,
                    sizeof(payload_digest));
        const std::uint64_t header_digest = fnv1a64_bytes(
            {reinterpret_cast<const std::uint8_t*>(&header),
             sizeof(header)});
        std::memcpy(header.reserved + 8, &header_digest,
                    sizeof(header_digest));
        std::fstream patch(tmp, std::ios::in | std::ios::out |
                                    std::ios::binary);
        if (!patch)
            fatal(strprintf("cannot reopen %s", tmp.c_str()));
        patch.write(reinterpret_cast<const char*>(&header),
                    sizeof(header));
        patch.flush();
        if (!patch)
            fatal(strprintf("error patching checksums into %s",
                            tmp.c_str()));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        fatal(strprintf("cannot rename %s -> %s: %s", tmp.c_str(),
                        path.c_str(), ec.message().c_str()));
    }
}

Genome
load_packed_genome(const std::string& path, std::uint64_t expected_digest)
{
    const auto mapping = map_file(path, "packed genome");
    const std::uint8_t* bytes = mapping->bytes();
    const std::uint64_t file_size = mapping->size();

    if (file_size < sizeof(PackedHeader))
        bad_packed(path, strprintf("truncated packed header (%llu bytes, "
                                   "need %zu)",
                                   static_cast<unsigned long long>(
                                       file_size),
                                   sizeof(PackedHeader)));
    PackedHeader header;
    std::memcpy(&header, bytes, sizeof(header));
    if (std::memcmp(header.magic, kPackedMagic, sizeof(kPackedMagic)) != 0)
        bad_packed(path, "not a darwin-wga packed genome (bad magic)");
    if (header.endian_tag != kPackedEndianTag)
        bad_packed(path, "packed genome was written with a different "
                         "byte order");
    if (header.version != kPackedFormatVersion)
        bad_packed(path, strprintf("unsupported packed format version %u "
                                   "(this build reads version %u)",
                                   header.version, kPackedFormatVersion));
    if (header.total_bytes != file_size)
        bad_packed(path,
                   strprintf("truncated or padded packed file (header "
                             "records %llu bytes, file has %llu)",
                             static_cast<unsigned long long>(
                                 header.total_bytes),
                             static_cast<unsigned long long>(file_size)));
    // Integrity first: verify both digests (when present) before any
    // directory or section byte is trusted.
    std::uint64_t payload_digest = 0;
    std::uint64_t header_digest = 0;
    std::memcpy(&payload_digest, header.reserved, sizeof(payload_digest));
    std::memcpy(&header_digest, header.reserved + 8,
                sizeof(header_digest));
    if (payload_digest != 0 || header_digest != 0) {
        PackedHeader canonical = header;
        std::memset(canonical.reserved + 8, 0, sizeof(header_digest));
        if (header_digest !=
            fnv1a64_bytes({reinterpret_cast<const std::uint8_t*>(
                               &canonical),
                           sizeof(canonical)}))
            bad_packed(path, "header checksum mismatch (corrupt packed "
                             "genome?)");
        if (payload_digest !=
            fnv1a64_bytes({bytes + sizeof(PackedHeader),
                           file_size - sizeof(PackedHeader)}))
            bad_packed(path, "payload checksum mismatch (corrupt packed "
                             "genome?)");
    }
    if (expected_digest != 0 && header.fasta_digest != expected_digest)
        bad_packed(path,
                   strprintf("stale sidecar: FASTA digest %s does not "
                             "match expected %s",
                             digest_hex(header.fasta_digest).c_str(),
                             digest_hex(expected_digest).c_str()));
    if (header.num_chromosomes == 0)
        bad_packed(path, "packed genome has no chromosomes");

    const std::uint64_t dir_bytes =
        header.num_chromosomes * sizeof(PackedChromEntry);
    if (header.dir_offset != sizeof(PackedHeader) ||
        header.names_offset != header.dir_offset + dir_bytes ||
        header.names_offset + header.names_bytes > file_size)
        bad_packed(path, "directory/name sections fall outside the file");
    if (header.genome_name_offset + header.genome_name_length >
        header.names_bytes)
        bad_packed(path, "genome name falls outside the name blob");

    const char* names =
        reinterpret_cast<const char*>(bytes + header.names_offset);
    Genome genome(std::string(names + header.genome_name_offset,
                              header.genome_name_length));

    std::uint64_t total_bases = 0;
    for (std::uint64_t i = 0; i < header.num_chromosomes; ++i) {
        PackedChromEntry entry;
        std::memcpy(&entry,
                    bytes + header.dir_offset + i * sizeof(entry),
                    sizeof(entry));
        if (entry.name_offset + entry.name_length > header.names_bytes)
            bad_packed(path, strprintf("chromosome %llu name falls "
                                       "outside the name blob",
                                       static_cast<unsigned long long>(i)));
        const std::uint64_t base_bytes =
            PackedSequence::base_word_count(entry.num_bases) * 8;
        const std::uint64_t n_bytes =
            PackedSequence::n_word_count(entry.num_bases) * 8;
        if (entry.base_words_offset % 8 != 0 ||
            entry.n_words_offset % 8 != 0 ||
            entry.base_words_offset + base_bytes > file_size ||
            entry.n_words_offset + n_bytes > file_size)
            bad_packed(path,
                       strprintf("chromosome %llu word sections are "
                                 "misaligned or fall outside the file",
                                 static_cast<unsigned long long>(i)));
        total_bases += entry.num_bases;
        genome.add_chromosome(PackedSequence::attach(
            std::string(names + entry.name_offset, entry.name_length),
            entry.num_bases,
            reinterpret_cast<const std::uint64_t*>(
                bytes + entry.base_words_offset),
            reinterpret_cast<const std::uint64_t*>(
                bytes + entry.n_words_offset),
            mapping));
    }
    if (total_bases != header.total_bases)
        bad_packed(path, "chromosome lengths disagree with the header's "
                         "total_bases");
    return genome;
}

Genome
read_genome_packed(const std::string& fasta_path, const std::string& name,
                   const std::string& sidecar_path)
{
    const auto fasta = map_file(fasta_path, "fasta");
    const std::uint64_t digest =
        fnv1a64_bytes({fasta->bytes(), fasta->size()});
    const std::string genome_name = name.empty() ? fasta_path : name;

    std::string sidecar;
    if (sidecar_path == "auto")
        sidecar = fasta_path + ".2bit";
    else
        sidecar = sidecar_path;

    if (!sidecar.empty() && is_packed_file(sidecar)) {
        try {
            Genome genome = load_packed_genome(sidecar, digest);
            genome.set_name(genome_name);
            debug(strprintf("reusing packed sidecar %s", sidecar.c_str()));
            return genome;
        } catch (const FatalError& e) {
            warn(strprintf("rebuilding packed sidecar %s: %s",
                           sidecar.c_str(), e.what()));
        }
    }

    Genome genome = parse_fasta_packed(fasta->bytes(), fasta->size(),
                                       fasta_path, genome_name);
    if (!sidecar.empty()) {
        try {
            save_packed_genome(sidecar, genome, digest);
        } catch (const FatalError& e) {
            // A read-only FASTA directory only costs us the cache.
            warn(strprintf("cannot write packed sidecar %s: %s",
                           sidecar.c_str(), e.what()));
        }
    }
    return genome;
}

bool
is_packed_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[sizeof(kPackedMagic)] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kPackedMagic, sizeof(magic)) == 0;
}

}  // namespace darwin::seq
