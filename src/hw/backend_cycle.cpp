/**
 * The `cycle-model` batch backend: the hw/ estimator as just another
 * AlignBackend, so device projections see real batching effects.
 *
 * Results come from the cpu-simd backend (bit-identical by the batch
 * contract); on top, every flush is costed against the paper's
 * f1.2xlarge FPGA configuration — per-tile cycle counts from the
 * geometry (BSW) and stripe-faithful (GACT-X) array models, summed
 * into `device_cycles`, and packed greedily onto the configured array
 * count (longest-processing-time onto the least-loaded array, in tile
 * order — deterministic) into `device_makespan_cycles`. A flush of
 * one tile has makespan == its own cycles; a well-filled flush shows
 * the array-level parallelism the co-processor actually gets, which is
 * exactly what single-tile dispatch could never measure.
 */
#include <algorithm>
#include <vector>

#include "align/batch.h"
#include "hw/bsw_array.h"
#include "hw/config.h"
#include "hw/gactx_array.h"

namespace darwin::align {

namespace {

/** Greedy least-loaded assignment of per-tile cycle costs onto
 *  `arrays` parallel units; returns the resulting makespan. */
std::uint64_t
pack_makespan(const std::vector<std::uint64_t>& costs, std::size_t arrays)
{
    if (costs.empty())
        return 0;
    if (arrays == 0)
        arrays = 1;
    std::vector<std::uint64_t> load(std::min(arrays, costs.size()), 0);
    for (const std::uint64_t cost : costs) {
        auto least = std::min_element(load.begin(), load.end());
        *least += cost;
    }
    return *std::max_element(load.begin(), load.end());
}

class CycleModelBackend : public AlignBackend {
  public:
    void
    bsw_batch(const TileBatch& batch, const ScoringParams& scoring,
              std::size_t band, const BatchOptions& options,
              std::span<BswResult> out, BatchExecStats* stats) const override
    {
        cpu_simd_backend()->bsw_batch(batch, scoring, band, options, out,
                                      stats);
        if (stats == nullptr)
            return;
        const hw::DeviceConfig device = hw::DeviceConfig::fpga_f1_2xlarge();
        std::vector<std::uint64_t> costs(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            costs[i] = hw::BswArrayModel::tile_cycles(
                batch.target(i).size(), batch.query(i).size(),
                device.bsw_pe, band);
        for (const std::uint64_t cost : costs)
            stats->device_cycles += cost;
        stats->device_makespan_cycles +=
            pack_makespan(costs, device.bsw_arrays);
    }

    void
    gactx_batch(const TileBatch& batch, const GactXParams& params,
                const BatchOptions& options, std::span<TileResult> out,
                BatchExecStats* stats) const override
    {
        cpu_simd_backend()->gactx_batch(batch, params, options, out, stats);
        if (stats == nullptr)
            return;
        const hw::DeviceConfig device = hw::DeviceConfig::fpga_f1_2xlarge();
        // The cycle model reads the stripe walk off each result, so the
        // estimate prices exactly the work the engine really did.
        std::vector<std::uint64_t> costs(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            costs[i] = hw::GactXArrayModel::tile_cycles(out[i],
                                                        params.num_pe);
        for (const std::uint64_t cost : costs)
            stats->device_cycles += cost;
        stats->device_makespan_cycles +=
            pack_makespan(costs, device.gactx_arrays);
    }
};

}  // namespace

const AlignBackend*
cycle_model_backend()
{
    static const CycleModelBackend backend;
    return &backend;
}

}  // namespace darwin::align
