#include "hw/gactx_array.h"

namespace darwin::hw {

GactXArrayModel::GactXArrayModel(align::GactXParams params)
    : params_(params), engine_(params)
{
}

GactXTileSim
GactXArrayModel::run_tile(std::span<const std::uint8_t> target,
                          std::span<const std::uint8_t> query) const
{
    GactXTileSim sim;
    sim.tile = engine_.align_tile(target, query);
    sim.cycles = tile_cycles(sim.tile, params_.num_pe);
    return sim;
}

std::uint64_t
GactXArrayModel::tile_cycles(const align::TileResult& tile, std::size_t npe)
{
    std::uint64_t cycles = kTileSetupCycles;
    for (const std::uint32_t columns : tile.stripe_columns)
        cycles += stripe_cycles(columns, npe);
    // Traceback runs at one pointer step per cycle.
    cycles += tile.cigar.total_ops();
    return cycles;
}

std::uint64_t
GactXArrayModel::workload_cycles(const align::ExtensionStats& stats,
                                 std::size_t npe)
{
    // Sum over stripes of (columns + npe - 1 + turnaround), plus setup
    // per tile and one cycle per traceback op.
    std::uint64_t cycles = stats.tiles * kTileSetupCycles;
    cycles += stats.stripe_columns;
    cycles += stats.stripes *
              (static_cast<std::uint64_t>(npe) - 1 + kStripeTurnaroundCycles);
    cycles += stats.traceback_ops;
    return cycles;
}

}  // namespace darwin::hw
