/**
 * @file
 * Device-level performance model (Table V reproduction).
 *
 * Inputs are the *measured* workload of a pipeline run (seed lookups,
 * filter tiles, GACT-X stripe/traceback totals) plus host-measured
 * software timings. Accelerated stage time is
 *     cycles_per_tile x tiles / (clock x arrays)
 * bounded below by the DRAM transfer time of the stage's traffic — the
 * paper provisions the ASIC so DRAM is the bottleneck, which this model
 * reproduces when the compute rate exceeds the link rate.
 */
#ifndef DARWIN_HW_PERF_MODEL_H
#define DARWIN_HW_PERF_MODEL_H

#include <string>

#include "align/extension.h"
#include "hw/bsw_array.h"
#include "hw/config.h"
#include "hw/dram_model.h"
#include "obs/metrics.h"

namespace darwin::hw {

/** The workload one WGA run produced (from PipelineStats). */
struct WorkloadCounts {
    std::uint64_t seed_lookups = 0;
    std::uint64_t filter_tiles = 0;
    std::size_t filter_tile_size = 320;
    std::size_t filter_band = 32;

    std::uint64_t extension_tiles = 0;
    std::size_t extension_tile_size = 1920;
    align::ExtensionStats extension;

    /** Host-measured seeding time (stays in software on the device). */
    double seeding_software_seconds = 0.0;
};

/** Per-stage estimate. */
struct StageEstimate {
    double compute_seconds = 0.0;
    double dram_seconds = 0.0;
    bool dram_bound = false;
    /** Total array-cycles the stage's workload costs on the device. */
    std::uint64_t cycles = 0;
    /** DRAM traffic the stage moves (the dram_seconds numerator). */
    std::uint64_t dram_bytes = 0;

    double
    seconds() const
    {
        return compute_seconds > dram_seconds ? compute_seconds
                                              : dram_seconds;
    }
};

/** Whole-device estimate. */
struct DeviceEstimate {
    StageEstimate filter;
    StageEstimate extension;
    double seeding_seconds = 0.0;
    double total_seconds = 0.0;
    double filter_tiles_per_second = 0.0;
    double extension_tiles_per_second = 0.0;
};

/** Performance model for one accelerator configuration. */
class PerfModel {
  public:
    explicit PerfModel(DeviceConfig config);

    /** Estimate a full WGA run on this device. */
    DeviceEstimate estimate(const WorkloadCounts& workload) const;

    /** Performance-per-dollar ratio versus a baseline run. */
    static double perf_per_dollar_improvement(
        double baseline_seconds, double baseline_price_per_hour,
        double device_seconds, double device_price_per_hour);

    /** Performance-per-watt ratio versus a baseline run. */
    static double perf_per_watt_improvement(double baseline_seconds,
                                            double baseline_power_w,
                                            double device_seconds,
                                            double device_power_w);

    const DeviceConfig& config() const { return config_; }

  private:
    DeviceConfig config_;
    DramModel dram_;
};

/**
 * Publish a device estimate under `<prefix>.*` names: per-stage
 * `{filter,extend}.{cycles,dram_bytes}` counters plus
 * `{filter,extend,seed,total}.micros` gauges (modeled device time in
 * microseconds, not host wall-clock). Counters add across calls, so
 * publishing per pair accumulates device totals.
 */
void publish_device_estimate(obs::MetricsRegistry& metrics,
                             const DeviceEstimate& estimate,
                             const std::string& prefix = "hw");

}  // namespace darwin::hw

#endif  // DARWIN_HW_PERF_MODEL_H
