/**
 * @file
 * Hardware platform configurations (paper §V-C/D, §VI-A/C).
 *
 * Three platforms appear in the evaluation:
 *  - the c4.8xlarge CPU software baseline,
 *  - the f1.2xlarge FPGA (50 BSW + 2 GACT-X arrays, 32 PEs each, 150 MHz),
 *  - the TSMC 40nm ASIC (64 BSW + 12 GACT-X arrays, 64 PEs each, 1 GHz,
 *    provisioned so DDR4-2400 x4 bandwidth is the bottleneck).
 */
#ifndef DARWIN_HW_CONFIG_H
#define DARWIN_HW_CONFIG_H

#include <cstdint>
#include <string>

namespace darwin::hw {

/** One accelerator (or baseline) platform. */
struct DeviceConfig {
    std::string name;

    /** Array clock in Hz (0 for the CPU baseline). */
    double clock_hz = 0.0;

    /** Banded-Smith-Waterman filter arrays. */
    std::size_t bsw_arrays = 0;
    std::size_t bsw_pe = 0;

    /** GACT-X extension arrays. */
    std::size_t gactx_arrays = 0;
    std::size_t gactx_pe = 0;

    /** Traceback SRAM per GACT-X PE, bytes (ASIC: 16 KB). */
    std::uint64_t traceback_per_pe = 16 * 1024;

    /** Peak DRAM bandwidth in bytes/s and achievable efficiency. */
    double dram_bandwidth = 0.0;
    double dram_efficiency = 0.6;

    /** Platform power (W), DRAM included (paper Table VI). */
    double power_w = 0.0;

    /** Cloud price in $/hour (0 when not applicable, e.g. ASIC). */
    double price_per_hour = 0.0;

    /** The c4.8xlarge software baseline host. */
    static DeviceConfig cpu_c4_8xlarge();

    /** The f1.2xlarge Xilinx Virtex UltraScale+ FPGA. */
    static DeviceConfig fpga_f1_2xlarge();

    /** The TSMC 40nm ASIC. */
    static DeviceConfig asic_40nm();
};

}  // namespace darwin::hw

#endif  // DARWIN_HW_CONFIG_H
