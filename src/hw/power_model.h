/**
 * @file
 * ASIC area/power model (Table IV reproduction).
 *
 * The paper reports a synthesized breakdown at TSMC 40nm / 1 GHz:
 * per-unit constants (area and power per BSW PE, per GACT-X PE, per KB of
 * traceback SRAM, DRAM interface power) are derived from that table so
 * alternative array provisioning can be explored; evaluating the model at
 * the paper's configuration reproduces Table IV exactly.
 */
#ifndef DARWIN_HW_POWER_MODEL_H
#define DARWIN_HW_POWER_MODEL_H

#include <string>
#include <vector>

#include "hw/config.h"

namespace darwin::hw {

/** One row of the area/power breakdown. */
struct ComponentBreakdown {
    std::string component;
    std::string configuration;
    double area_mm2 = 0.0;
    double power_w = 0.0;
};

/** ASIC area/power model. */
class AsicPowerModel {
  public:
    AsicPowerModel();

    /** Breakdown rows (BSW logic, GACT-X logic, SRAM, DRAM) + totals. */
    std::vector<ComponentBreakdown> breakdown(
        const DeviceConfig& config) const;

    double total_area_mm2(const DeviceConfig& config) const;
    double total_power_w(const DeviceConfig& config) const;

  private:
    // Per-unit constants derived from Table IV.
    double area_per_bsw_pe_;        // mm^2
    double power_per_bsw_pe_;       // W
    double area_per_gactx_pe_;      // mm^2
    double power_per_gactx_pe_;     // W
    double area_per_sram_kb_;       // mm^2
    double power_per_sram_kb_;      // W
    double dram_power_;             // W
};

}  // namespace darwin::hw

#endif  // DARWIN_HW_POWER_MODEL_H
