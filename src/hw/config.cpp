#include "hw/config.h"

namespace darwin::hw {

DeviceConfig
DeviceConfig::cpu_c4_8xlarge()
{
    DeviceConfig config;
    config.name = "CPU (c4.8xlarge)";
    config.power_w = 215.0;        // Table VI
    config.price_per_hour = 1.59;  // §V-B
    return config;
}

DeviceConfig
DeviceConfig::fpga_f1_2xlarge()
{
    DeviceConfig config;
    config.name = "FPGA (Virtex UltraScale+)";
    config.clock_hz = 150e6;  // §V-C
    config.bsw_arrays = 50;
    config.bsw_pe = 32;
    config.gactx_arrays = 2;
    config.gactx_pe = 32;
    // One 64 GB DDR4 channel.
    config.dram_bandwidth = 19.2e9;
    config.power_w = 65.0;         // Table VI
    config.price_per_hour = 1.65;  // §V-C
    return config;
}

DeviceConfig
DeviceConfig::asic_40nm()
{
    DeviceConfig config;
    config.name = "ASIC (TSMC 40nm)";
    config.clock_hz = 1e9;  // §VI-A: 1 GHz critical path
    config.bsw_arrays = 64;
    config.bsw_pe = 64;
    config.gactx_arrays = 12;
    config.gactx_pe = 64;
    config.traceback_per_pe = 16 * 1024;  // Table IV
    // Four DDR4-2400R channels (Table IV): 4 x 19.2 GB/s.
    config.dram_bandwidth = 4 * 19.2e9;
    config.power_w = 43.34;  // Table IV total
    config.price_per_hour = 0.0;
    return config;
}

}  // namespace darwin::hw
