/**
 * @file
 * Cycle model of the GACT-X extension systolic array.
 *
 * The software GACT-X engine (align/gactx.h) is stripe-faithful: the
 * per-stripe column counts it reports are exactly the columns the
 * hardware wavefront sweeps, so the array's cycle count is derived
 * directly from a TileResult — wavefront cycles per stripe plus the
 * traceback walk (1 step/cycle from the max cell to the origin) and the
 * fixed tile setup. align_tile() dispatches to a runtime-selected
 * extension kernel (align/kernels/), all of which are bit-identical in
 * every TileResult field including stripe_columns — so the cycle counts
 * derived here are invariant under DARWIN_KERNEL/--kernel.
 */
#ifndef DARWIN_HW_GACTX_ARRAY_H
#define DARWIN_HW_GACTX_ARRAY_H

#include "align/extension.h"
#include "align/gactx.h"
#include "hw/pe_array.h"

namespace darwin::hw {

/** Result of simulating one extension tile. */
struct GactXTileSim {
    align::TileResult tile;  ///< identical to the software engine's result
    std::uint64_t cycles = 0;
};

/** One GACT-X systolic array. */
class GactXArrayModel {
  public:
    explicit GactXArrayModel(align::GactXParams params);

    /** Run the stripe-faithful engine and attach the cycle count. */
    GactXTileSim run_tile(std::span<const std::uint8_t> target,
                          std::span<const std::uint8_t> query) const;

    /** Cycle count for an already-computed tile result. */
    static std::uint64_t tile_cycles(const align::TileResult& tile,
                                     std::size_t npe);

    /**
     * Cycle count for a whole extension workload from its aggregated
     * stats (stripes, stripe columns, traceback ops, tiles).
     */
    static std::uint64_t workload_cycles(const align::ExtensionStats& stats,
                                         std::size_t npe);

    const align::GactXParams& params() const { return params_; }

  private:
    align::GactXParams params_;
    align::GactXTileAligner engine_;
};

}  // namespace darwin::hw

#endif  // DARWIN_HW_GACTX_ARRAY_H
