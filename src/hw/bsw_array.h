/**
 * @file
 * Cycle-level model of the BSW (gapped filtering) systolic array
 * (paper §IV, Eqs. 4-5).
 *
 * The array processes the query in stripes of Npe rows. Because the band
 * is fixed, each stripe's column range is a closed-form function of the
 * stripe number n and the bandwidth B:
 *     jstart(n) = max(0, (n-1)*Npe + 1 - B)
 *     jstop(n)  = min(rlen - 1, n*Npe + B)
 * The model computes the same affine-gap Smith-Waterman recurrence as the
 * software kernel over exactly that cell set (a stripe-granular superset
 * of the per-row band), and counts wavefront cycles per Eq. 4/5 geometry.
 */
#ifndef DARWIN_HW_BSW_ARRAY_H
#define DARWIN_HW_BSW_ARRAY_H

#include <span>

#include "align/scoring.h"
#include "hw/pe_array.h"

namespace darwin::hw {

/** Configuration of one BSW array. */
struct BswArrayConfig {
    std::size_t num_pe = 64;
    std::size_t band = 32;
    align::ScoringParams scoring = align::ScoringParams::paper_defaults();
};

/** Result of simulating one filter tile. */
struct BswTileSim {
    align::Score max_score = 0;
    std::size_t target_max = 0;
    std::size_t query_max = 0;
    std::uint64_t cycles = 0;
    std::uint64_t cells = 0;
};

/** One BSW systolic array. */
class BswArrayModel {
  public:
    explicit BswArrayModel(BswArrayConfig config);

    /** Simulate a tile cell-for-cell and count cycles. */
    BswTileSim run_tile(std::span<const std::uint8_t> target,
                        std::span<const std::uint8_t> query) const;

    /**
     * Geometry-only cycle count for a (rlen x qlen) tile — what the
     * performance model uses, identical to run_tile().cycles.
     */
    static std::uint64_t tile_cycles(std::size_t rlen, std::size_t qlen,
                                     std::size_t npe, std::size_t band);

    const BswArrayConfig& config() const { return config_; }

  private:
    BswArrayConfig config_;
};

}  // namespace darwin::hw

#endif  // DARWIN_HW_BSW_ARRAY_H
