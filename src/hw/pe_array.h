/**
 * @file
 * Shared systolic-array timing primitives.
 *
 * Both accelerator arrays process a stripe of Npe rows as a diagonal
 * wavefront: after Npe-1 fill cycles, one column completes per cycle, so
 * a stripe of C columns takes C + Npe - 1 cycles, plus a small turnaround
 * to spill/reload the boundary BRAM row between stripes.
 */
#ifndef DARWIN_HW_PE_ARRAY_H
#define DARWIN_HW_PE_ARRAY_H

#include <cstdint>

namespace darwin::hw {

/** Fixed per-stripe turnaround cycles (BRAM row handoff). */
inline constexpr std::uint64_t kStripeTurnaroundCycles = 4;

/** Fixed per-tile setup cycles (descriptor load, PE config). */
inline constexpr std::uint64_t kTileSetupCycles = 32;

/** Cycles for one stripe of `columns` columns on `npe` PEs. */
inline std::uint64_t
stripe_cycles(std::uint64_t columns, std::size_t npe)
{
    if (columns == 0)
        return kStripeTurnaroundCycles;
    return columns + static_cast<std::uint64_t>(npe) - 1 +
           kStripeTurnaroundCycles;
}

}  // namespace darwin::hw

#endif  // DARWIN_HW_PE_ARRAY_H
