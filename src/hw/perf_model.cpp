#include "hw/perf_model.h"

#include "hw/gactx_array.h"
#include "util/logging.h"

namespace darwin::hw {

PerfModel::PerfModel(DeviceConfig config)
    : config_(std::move(config)), dram_(config_)
{
    require(config_.clock_hz > 0.0, "PerfModel: device has no clock");
    require(config_.bsw_arrays > 0 && config_.gactx_arrays > 0,
            "PerfModel: device has no arrays");
}

DeviceEstimate
PerfModel::estimate(const WorkloadCounts& workload) const
{
    DeviceEstimate out;

    // Filtering: identical tiles, closed-form cycles.
    const std::uint64_t bsw_cycles = BswArrayModel::tile_cycles(
        workload.filter_tile_size, workload.filter_tile_size,
        config_.bsw_pe, workload.filter_band);
    const double filter_compute_rate =
        config_.clock_hz / static_cast<double>(bsw_cycles) *
        static_cast<double>(config_.bsw_arrays);
    out.filter.compute_seconds =
        static_cast<double>(workload.filter_tiles) / filter_compute_rate;
    out.filter.cycles = bsw_cycles * workload.filter_tiles;
    out.filter.dram_bytes =
        workload.filter_tiles *
        DramModel::bsw_tile_bytes(workload.filter_tile_size);
    out.filter.dram_seconds = dram_.transfer_seconds(out.filter.dram_bytes);
    out.filter.dram_bound =
        out.filter.dram_seconds > out.filter.compute_seconds;

    // Extension: cycles from the measured stripe/traceback totals.
    const std::uint64_t gactx_cycles = GactXArrayModel::workload_cycles(
        workload.extension, config_.gactx_pe);
    out.extension.compute_seconds =
        static_cast<double>(gactx_cycles) /
        (config_.clock_hz * static_cast<double>(config_.gactx_arrays));
    out.extension.cycles = gactx_cycles;
    out.extension.dram_bytes =
        workload.extension.tiles *
            2 * static_cast<std::uint64_t>(workload.extension_tile_size) +
        (workload.extension.traceback_ops + 3) / 4;
    out.extension.dram_seconds =
        dram_.transfer_seconds(out.extension.dram_bytes);
    out.extension.dram_bound =
        out.extension.dram_seconds > out.extension.compute_seconds;

    out.seeding_seconds = workload.seeding_software_seconds;
    out.total_seconds = out.seeding_seconds + out.filter.seconds() +
                        out.extension.seconds();

    if (out.filter.seconds() > 0.0) {
        out.filter_tiles_per_second =
            static_cast<double>(workload.filter_tiles) /
            out.filter.seconds();
    }
    if (out.extension.seconds() > 0.0) {
        out.extension_tiles_per_second =
            static_cast<double>(workload.extension.tiles) /
            out.extension.seconds();
    }
    return out;
}

void
publish_device_estimate(obs::MetricsRegistry& metrics,
                        const DeviceEstimate& estimate,
                        const std::string& prefix)
{
    const auto name = [&prefix](const char* leaf) { return prefix + leaf; };
    metrics.counter(name(".filter.cycles")).add(estimate.filter.cycles);
    metrics.counter(name(".filter.dram_bytes"))
        .add(estimate.filter.dram_bytes);
    metrics.counter(name(".extend.cycles")).add(estimate.extension.cycles);
    metrics.counter(name(".extend.dram_bytes"))
        .add(estimate.extension.dram_bytes);
    const auto micros = [](double seconds) {
        return static_cast<std::int64_t>(seconds * 1e6);
    };
    metrics.gauge(name(".seed.micros")).set(micros(estimate.seeding_seconds));
    metrics.gauge(name(".filter.micros"))
        .set(micros(estimate.filter.seconds()));
    metrics.gauge(name(".extend.micros"))
        .set(micros(estimate.extension.seconds()));
    metrics.gauge(name(".total.micros")).set(micros(estimate.total_seconds));
}

double
PerfModel::perf_per_dollar_improvement(double baseline_seconds,
                                       double baseline_price_per_hour,
                                       double device_seconds,
                                       double device_price_per_hour)
{
    require(device_seconds > 0.0 && baseline_seconds > 0.0,
            "perf_per_dollar_improvement: zero runtime");
    const double baseline_cost =
        baseline_seconds / 3600.0 * baseline_price_per_hour;
    const double device_cost =
        device_seconds / 3600.0 * device_price_per_hour;
    require(device_cost > 0.0, "perf_per_dollar_improvement: zero cost");
    return baseline_cost / device_cost;
}

double
PerfModel::perf_per_watt_improvement(double baseline_seconds,
                                     double baseline_power_w,
                                     double device_seconds,
                                     double device_power_w)
{
    require(device_seconds > 0.0 && device_power_w > 0.0,
            "perf_per_watt_improvement: zero device work");
    const double baseline_energy = baseline_seconds * baseline_power_w;
    const double device_energy = device_seconds * device_power_w;
    return baseline_energy / device_energy;
}

}  // namespace darwin::hw
