/**
 * @file
 * DRAM traffic model (the paper uses Ramulator + DRAMPower; we model the
 * same quantity — bytes moved per tile against an achievable-bandwidth
 * ceiling — with closed-form accounting).
 *
 * Both array types stream their tile's target and query slices from
 * DRAM (3-bit-packed in BRAM, byte-aligned on the link), and GACT-X
 * returns its traceback pointers to the host.
 */
#ifndef DARWIN_HW_DRAM_MODEL_H
#define DARWIN_HW_DRAM_MODEL_H

#include <cstdint>

#include "hw/config.h"

namespace darwin::hw {

/** Closed-form DRAM traffic/bandwidth model. */
class DramModel {
  public:
    explicit DramModel(const DeviceConfig& config);

    /** Achievable bandwidth (peak x efficiency), bytes/s. */
    double achievable_bandwidth() const;

    /** Bytes fetched per BSW filter tile (both sequence slices). */
    static std::uint64_t bsw_tile_bytes(std::size_t tile_size);

    /**
     * Bytes per GACT-X tile: both sequence slices in, 2-bit traceback
     * pointers out.
     */
    static std::uint64_t gactx_tile_bytes(std::size_t tile_size,
                                          std::uint64_t traceback_ops);

    /** Seconds to move `bytes` at the achievable bandwidth. */
    double transfer_seconds(std::uint64_t bytes) const;

    /** Tiles/s the link alone can sustain for a given per-tile traffic. */
    double bandwidth_tile_rate(std::uint64_t bytes_per_tile) const;

  private:
    double achievable_;
};

}  // namespace darwin::hw

#endif  // DARWIN_HW_DRAM_MODEL_H
