#include "hw/dram_model.h"

#include "util/logging.h"

namespace darwin::hw {

DramModel::DramModel(const DeviceConfig& config)
    : achievable_(config.dram_bandwidth * config.dram_efficiency)
{
    require(achievable_ > 0.0, "DramModel: device has no DRAM bandwidth");
}

double
DramModel::achievable_bandwidth() const
{
    return achievable_;
}

std::uint64_t
DramModel::bsw_tile_bytes(std::size_t tile_size)
{
    // Target + query slices, one byte per base on the link.
    return 2 * static_cast<std::uint64_t>(tile_size);
}

std::uint64_t
DramModel::gactx_tile_bytes(std::size_t tile_size,
                            std::uint64_t traceback_ops)
{
    // Sequences in + 2-bit traceback pointers out (4 ops per byte).
    return 2 * static_cast<std::uint64_t>(tile_size) +
           (traceback_ops + 3) / 4;
}

double
DramModel::transfer_seconds(std::uint64_t bytes) const
{
    return static_cast<double>(bytes) / achievable_;
}

double
DramModel::bandwidth_tile_rate(std::uint64_t bytes_per_tile) const
{
    require(bytes_per_tile > 0, "DramModel: zero bytes per tile");
    return achievable_ / static_cast<double>(bytes_per_tile);
}

}  // namespace darwin::hw
