#include "hw/power_model.h"

#include "util/strings.h"

namespace darwin::hw {

AsicPowerModel::AsicPowerModel()
{
    // Table IV: 64 x 64-PE BSW arrays: 16.6 mm^2, 25.6 W.
    const double bsw_pes = 64.0 * 64.0;
    area_per_bsw_pe_ = 16.6 / bsw_pes;
    power_per_bsw_pe_ = 25.6 / bsw_pes;

    // Table IV: 12 x 64-PE GACT-X arrays: 4.2 mm^2, 6.72 W.
    const double gactx_pes = 12.0 * 64.0;
    area_per_gactx_pe_ = 4.2 / gactx_pes;
    power_per_gactx_pe_ = 6.72 / gactx_pes;

    // Table IV: 12 x (64 PE x 16 KB/PE) SRAM: 15.12 mm^2, 7.92 W.
    const double sram_kb = 12.0 * 64.0 * 16.0;
    area_per_sram_kb_ = 15.12 / sram_kb;
    power_per_sram_kb_ = 7.92 / sram_kb;

    // Table IV: DDR4-2400R, 4 x 32 GB: 3.10 W.
    dram_power_ = 3.10;
}

std::vector<ComponentBreakdown>
AsicPowerModel::breakdown(const DeviceConfig& config) const
{
    std::vector<ComponentBreakdown> rows;

    const double bsw_pes =
        static_cast<double>(config.bsw_arrays * config.bsw_pe);
    rows.push_back({"BSW Logic",
                    strprintf("%zu x (%zuPE array)", config.bsw_arrays,
                              config.bsw_pe),
                    area_per_bsw_pe_ * bsw_pes,
                    power_per_bsw_pe_ * bsw_pes});

    const double gactx_pes =
        static_cast<double>(config.gactx_arrays * config.gactx_pe);
    rows.push_back({"GACT-X Logic",
                    strprintf("%zu x (%zuPE array)", config.gactx_arrays,
                              config.gactx_pe),
                    area_per_gactx_pe_ * gactx_pes,
                    power_per_gactx_pe_ * gactx_pes});

    const double sram_kb =
        gactx_pes * static_cast<double>(config.traceback_per_pe) / 1024.0;
    rows.push_back({"Traceback SRAM",
                    strprintf("%zu x (%zuPE x %lluKB/PE)",
                              config.gactx_arrays, config.gactx_pe,
                              static_cast<unsigned long long>(
                                  config.traceback_per_pe / 1024)),
                    area_per_sram_kb_ * sram_kb,
                    power_per_sram_kb_ * sram_kb});

    rows.push_back({"DRAM", "DDR4-2400R 4 x 32GB", 0.0, dram_power_});
    return rows;
}

double
AsicPowerModel::total_area_mm2(const DeviceConfig& config) const
{
    double total = 0.0;
    for (const auto& row : breakdown(config))
        total += row.area_mm2;
    return total;
}

double
AsicPowerModel::total_power_w(const DeviceConfig& config) const
{
    double total = 0.0;
    for (const auto& row : breakdown(config))
        total += row.power_w;
    return total;
}

}  // namespace darwin::hw
