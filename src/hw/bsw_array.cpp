#include "hw/bsw_array.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace darwin::hw {

using align::kScoreNegInf;
using align::Score;

BswArrayModel::BswArrayModel(BswArrayConfig config) : config_(config)
{
    require(config_.num_pe > 0, "BswArrayModel: num_pe must be > 0");
}

BswTileSim
BswArrayModel::run_tile(std::span<const std::uint8_t> target,
                        std::span<const std::uint8_t> query) const
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    const std::size_t npe = config_.num_pe;
    const std::size_t band = config_.band;
    const align::ScoringParams& scoring = config_.scoring;

    BswTileSim sim;
    if (n == 0 || m == 0)
        return sim;

    // BRAM row: last row of the previous stripe. Row 0 of local SW is all
    // zeros across every column.
    std::vector<Score> bram_v(n + 1, 0);
    std::vector<Score> bram_g(n + 1, kScoreNegInf);
    std::vector<Score> next_v(n + 1, kScoreNegInf);
    std::vector<Score> next_g(n + 1, kScoreNegInf);
    std::size_t bram_lo = 0;   // valid window of the BRAM row (inclusive)
    std::size_t bram_hi = n;

    std::vector<Score> col_v(npe), col_g(npe), col_h(npe);
    std::vector<Score> prev_col_v(npe), prev_col_g(npe);

    const std::size_t num_stripes = (m + npe - 1) / npe;
    for (std::size_t stripe = 1; stripe <= num_stripes; ++stripe) {
        const std::size_t i0 = (stripe - 1) * npe + 1;
        const std::size_t i1 = std::min(m, stripe * npe);
        const std::size_t rows = i1 - i0 + 1;

        // Eq. 4/5 column range (0-based column indices of the target).
        const std::int64_t js =
            std::max<std::int64_t>(0,
                                   static_cast<std::int64_t>((stripe - 1) *
                                                             npe + 1) -
                                       static_cast<std::int64_t>(band));
        const std::size_t jstart = static_cast<std::size_t>(js);
        const std::size_t jstop =
            std::min(n - 1, stripe * npe + band);
        if (jstart > jstop)
            continue;

        std::fill(col_h.begin(), col_h.end(), kScoreNegInf);
        std::fill(prev_col_v.begin(), prev_col_v.end(), kScoreNegInf);
        std::fill(prev_col_g.begin(), prev_col_g.end(), kScoreNegInf);

        // DP columns are 1-based: column j corresponds to target index
        // j - 1, so the Eq. 4/5 range maps to [jstart + 1, jstop + 1].
        for (std::size_t j = jstart + 1; j <= jstop + 1; ++j) {
            for (std::size_t r = 0; r < rows; ++r) {
                const std::size_t i = i0 + r;
                Score up, g_up, diag_v;
                if (r == 0) {
                    const bool in = j >= bram_lo && j <= bram_hi;
                    const bool in_l = j >= bram_lo + 1 && j <= bram_hi + 1;
                    up = in ? bram_v[j] : kScoreNegInf;
                    g_up = in ? bram_g[j] : kScoreNegInf;
                    diag_v = in_l ? bram_v[j - 1] : kScoreNegInf;
                } else {
                    up = col_v[r - 1];
                    g_up = col_g[r - 1];
                    // DP column 1 reads the V(i-1, 0) = 0 alignment-start
                    // boundary (banded_sw.h "Boundary semantics"), which
                    // is never stored in prev_col.
                    diag_v = (j == 1) ? 0 : prev_col_v[r - 1];
                }
                const Score left_v = (j == 1) ? 0 : prev_col_v[r];

                const Score h = std::max(left_v - scoring.gap_open,
                                         col_h[r] - scoring.gap_extend);
                col_h[r] = h;
                const Score g = std::max(up - scoring.gap_open,
                                         g_up - scoring.gap_extend);
                const Score diag =
                    diag_v +
                    scoring.substitution(target[j - 1], query[i - 1]);

                Score val = std::max<Score>(0, diag);
                val = std::max(val, h);
                val = std::max(val, g);
                col_v[r] = val;
                col_g[r] = g;
                ++sim.cells;

                if (val > sim.max_score) {
                    sim.max_score = val;
                    sim.target_max = j;
                    sim.query_max = i;
                }
            }
            std::swap(prev_col_v, col_v);
            std::swap(prev_col_g, col_g);
            next_v[j] = prev_col_v[rows - 1];
            next_g[j] = prev_col_g[rows - 1];
        }

        sim.cycles += stripe_cycles(jstop - jstart + 1, npe);
        std::swap(bram_v, next_v);
        std::swap(bram_g, next_g);
        std::fill(next_v.begin(), next_v.end(), kScoreNegInf);
        std::fill(next_g.begin(), next_g.end(), kScoreNegInf);
        bram_lo = jstart + 1;
        bram_hi = jstop + 1;
    }
    sim.cycles += kTileSetupCycles;
    return sim;
}

std::uint64_t
BswArrayModel::tile_cycles(std::size_t rlen, std::size_t qlen,
                           std::size_t npe, std::size_t band)
{
    if (rlen == 0 || qlen == 0)
        return kTileSetupCycles;
    std::uint64_t cycles = kTileSetupCycles;
    const std::size_t num_stripes = (qlen + npe - 1) / npe;
    for (std::size_t stripe = 1; stripe <= num_stripes; ++stripe) {
        const std::int64_t js =
            std::max<std::int64_t>(0,
                                   static_cast<std::int64_t>((stripe - 1) *
                                                             npe + 1) -
                                       static_cast<std::int64_t>(band));
        const std::size_t jstart = static_cast<std::size_t>(js);
        const std::size_t jstop = std::min(rlen - 1, stripe * npe + band);
        if (jstart > jstop)
            continue;
        cycles += stripe_cycles(jstop - jstart + 1, npe);
    }
    return cycles;
}

}  // namespace darwin::hw
