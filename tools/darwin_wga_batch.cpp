/**
 * @file
 * `darwin-wga-batch` — streaming many-pair whole-genome alignment.
 *
 * Runs a manifest of (target, query) genome pairs through the batch
 * engine (src/batch/): each pair's query is sharded and driven through
 * seed -> filter -> extend -> chain as a pipeline-parallel dataflow, so
 * a handful of threads keeps every stage busy across the whole
 * manifest. Per-pair results are bit-identical to the serial
 * `darwin-wga align` pipeline.
 *
 * Manifest file: one pair per line, `name target.fa query.fa`
 * (whitespace-separated; '#' starts a comment). Alternatively,
 * --pairs synthesizes the paper's species pairs in-process (Fig. 8
 * phylogenetic sweep style).
 *
 *   darwin-wga-batch --manifest pairs.tsv --outdir out --threads 8
 *   darwin-wga-batch --pairs ce11-cb4,dm6-dp4,dm6-droYak2,dm6-droSim1 \
 *       --size 200000 --outdir sweep
 *
 * Fault tolerance (see DESIGN.md "Fault tolerance & degradation"):
 * a crash or budget overrun in one pair quarantines only that pair;
 * --pair-timeout/--pair-max-cells/--pair-max-heap-mb bound each pair,
 * with one degraded retry before quarantine (disable with --no-retry).
 * Every terminal pair is journaled to <outdir>/journal.jsonl, outputs
 * are written atomically, and --resume skips already-finished pairs.
 * --fault-inject (or the DARWIN_FAULT env var) deterministically
 * injects faults at named probe points for chaos testing. SIGINT/
 * SIGTERM shut the run down cooperatively so the journal, metrics, and
 * trace all land on disk.
 *
 * Outputs per pair: <outdir>/<name>.maf and <outdir>/<name>.chain, plus
 * <outdir>/metrics.json, and <outdir>/quarantine.json describing any
 * quarantined pairs.
 */
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "batch/checkpoint.h"
#include "batch/manifest.h"
#include "batch/scheduler.h"
#include "chain/chain_metrics.h"
#include "fault/fault_plan.h"
#include "obs_support.h"
#include "seq/fasta.h"
#include "signal_support.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "wga/chain_io.h"
#include "wga/maf.h"

using namespace darwin;

namespace {

/** A manifest entry plus ownership of any loaded/synthesized genomes. */
struct ManifestEntry {
    std::string name;
    seq::Genome target;
    seq::Genome query;
};

/** Pending pair names (resume-filtered), before any genome I/O. */
struct PendingPlan {
    std::vector<batch::ManifestPair> manifest;  ///< empty in --pairs mode
    std::vector<std::string> synth_names;       ///< empty in manifest mode
    std::size_t skipped = 0;  ///< journaled pairs we will not rerun
};

/**
 * The canonical config string behind the journal fingerprint: exactly
 * the knobs that shape output bytes (preset, strands, seeds, budgets,
 * fault plan, and the pair list itself). Scheduling knobs — threads,
 * shard size, queue capacity — are deliberately excluded, so a resume
 * may use a different machine shape.
 */
std::string
canonical_config(const ArgParser& args)
{
    std::string out = strprintf(
        "v1;preset=%s;both-strands=%d;no-transitions=%d;"
        "timeout=%s;max-cells=%lld;max-heap-mb=%lld;retry=%d;fault=%s",
        args.get("preset").c_str(), args.get_flag("both-strands") ? 1 : 0,
        args.get_flag("no-transitions") ? 1 : 0,
        args.get("pair-timeout").c_str(),
        static_cast<long long>(args.get_int("pair-max-cells")),
        static_cast<long long>(args.get_int("pair-max-heap-mb")),
        args.get_flag("no-retry") ? 0 : 1,
        args.get("fault-inject").c_str());
    if (!args.get("manifest").empty()) {
        out += ";manifest=";
        for (const auto& pair :
             batch::read_manifest_file(args.get("manifest"))) {
            out += strprintf("%s,%s,%s|", pair.name.c_str(),
                             pair.target_path.c_str(),
                             pair.query_path.c_str());
        }
    } else {
        out += strprintf(";synth=%s;size=%lld;chromosomes=%lld;"
                         "exon-every=%lld;seed=%lld",
                         args.get("pairs").c_str(),
                         static_cast<long long>(args.get_int("size")),
                         static_cast<long long>(args.get_int("chromosomes")),
                         static_cast<long long>(args.get_int("exon-every")),
                         static_cast<long long>(args.get_int("seed")));
    }
    return out;
}

/** Decide what still needs to run, before paying any FASTA/synth cost. */
PendingPlan
plan_pending(const ArgParser& args, const batch::CheckpointJournal& journal)
{
    PendingPlan plan;
    if (!args.get("manifest").empty()) {
        for (auto& pair : batch::read_manifest_file(args.get("manifest"))) {
            if (journal.completed(pair.name))
                ++plan.skipped;
            else
                plan.manifest.push_back(std::move(pair));
        }
        return plan;
    }
    if (args.get("pairs").empty())
        fatal("batch: provide --manifest or --pairs");
    std::size_t listed = 0;
    for (const std::string& raw : split(args.get("pairs"), ',')) {
        const std::string name = trim(raw);
        if (name.empty())
            continue;
        ++listed;
        if (journal.completed(name))
            ++plan.skipped;
        else
            plan.synth_names.push_back(name);
    }
    if (listed == 0)
        fatal("batch: --pairs produced no entries");
    return plan;
}

/** Load/synthesize genomes for the pending pairs only. */
std::vector<ManifestEntry>
load_pending(const ArgParser& args, const PendingPlan& plan)
{
    std::vector<ManifestEntry> entries;
    for (const batch::ManifestPair& pair : plan.manifest) {
        ManifestEntry entry;
        entry.name = pair.name;
        entry.target = seq::read_genome(pair.target_path);
        entry.query = seq::read_genome(pair.query_path);
        batch::validate_pair_genomes(pair, entry.target, entry.query);
        entries.push_back(std::move(entry));
    }
    if (!plan.synth_names.empty()) {
        synth::AncestorConfig shape;
        shape.num_chromosomes =
            static_cast<std::size_t>(args.get_int("chromosomes"));
        shape.chromosome_length =
            static_cast<std::size_t>(args.get_int("size"));
        shape.exons_per_chromosome =
            shape.chromosome_length /
            static_cast<std::size_t>(args.get_int("exon-every"));
        const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
        for (const std::string& name : plan.synth_names) {
            auto pair = synth::make_species_pair(
                synth::find_species_pair(name), shape, seed);
            ManifestEntry entry;
            entry.name = name;
            entry.target = std::move(pair.target.genome);
            entry.query = std::move(pair.query.genome);
            entries.push_back(std::move(entry));
        }
    }
    return entries;
}

const char*
status_tag(fault::PairStatus status)
{
    switch (status) {
      case fault::PairStatus::Clean:
        return "";
      case fault::PairStatus::Degraded:
        return "  [degraded]";
      case fault::PairStatus::Quarantined:
        return "  [QUARANTINED]";
      case fault::PairStatus::Interrupted:
        return "  [interrupted]";
    }
    return "";
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("darwin-wga-batch: streaming batch whole-genome "
                   "alignment over a manifest of genome pairs.");
    args.add_option("manifest", "",
                    "manifest file: one 'name target.fa query.fa' per line");
    args.add_option("pairs", "",
                    "alternative: comma-separated synthetic paper pairs "
                    "(ce11-cb4,dm6-dp4,dm6-droYak2,dm6-droSim1)");
    args.add_option("size", "200000", "synthetic chromosome length (bp)");
    args.add_option("chromosomes", "1", "synthetic chromosomes per genome");
    args.add_option("exon-every", "2500", "one planted exon per N bp");
    args.add_option("seed", "1", "synthetic generator seed");
    args.add_option("outdir", "batch_out", "output directory");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    args.add_option("shard-bp", "262144", "query bp per work unit");
    args.add_option("queue-cap", "128", "inter-stage queue capacity");
    args.add_flag("streaming",
                  "bounded-memory mode: run each pair whole through "
                  "the streaming pipeline (2-bit packed storage, seed "
                  "table built one band shard at a time, hits and "
                  "candidates through spill-or-backpressure channels). "
                  "Output is bit-identical; gapped (darwin) preset "
                  "only");
    args.add_option("stream-shard-bp", "8388608",
                    "band-start bp per target seed-table shard in "
                    "--streaming mode");
    args.add_option("spill-dir", "",
                    "--streaming overflow spill directory ('' = system "
                    "temp dir)");
    args.add_option("preset", "darwin",
                    "parameter preset: darwin | lastz");
    args.add_flag("both-strands", "also align the reverse complement");
    args.add_flag("no-transitions", "disable 1-transition seeds");
    args.add_option("pair-timeout", "0",
                    "wall-clock budget per pair in seconds (0 = unlimited)");
    args.add_option("pair-max-cells", "0",
                    "DP-cell budget per pair (0 = unlimited)");
    args.add_option("pair-max-heap-mb", "0",
                    "estimated heap budget per pair in MiB (0 = unlimited)");
    args.add_flag("no-retry",
                  "quarantine budget overruns immediately instead of "
                  "retrying once with degraded parameters");
    args.add_option("fault-inject", "",
                    "deterministic fault-injection spec (see DESIGN.md; "
                    "overrides $DARWIN_FAULT)");
    args.add_flag("resume",
                  "skip pairs already journaled in <outdir>/journal.jsonl "
                  "(refuses a journal from an incompatible config)");
    tools::add_obs_options(args);
    if (!args.parse(argc, argv))
        return 1;

    init_log_level_from_env();
    try {
        const std::filesystem::path outdir(args.get("outdir"));
        std::filesystem::create_directories(outdir);

        const std::string fingerprint =
            batch::config_fingerprint(canonical_config(args));
        const std::string journal_path =
            (outdir / "journal.jsonl").string();
        batch::CheckpointJournal journal =
            args.get_flag("resume")
                ? batch::CheckpointJournal::resume(journal_path, fingerprint)
                : batch::CheckpointJournal::create(journal_path,
                                                   fingerprint);
        const PendingPlan plan = plan_pending(args, journal);
        if (plan.skipped > 0) {
            inform(strprintf("resume: skipping %zu completed pair%s from %s",
                             plan.skipped, plan.skipped == 1 ? "" : "s",
                             journal_path.c_str()));
        }
        const std::vector<ManifestEntry> entries = load_pending(args, plan);
        if (entries.empty()) {
            std::printf("all %zu pairs already completed; nothing to do\n",
                        plan.skipped);
            return 0;
        }

        // Fault injection: --fault-inject wins over $DARWIN_FAULT.
        fault::FaultPlan fault_plan =
            !args.get("fault-inject").empty()
                ? fault::FaultPlan::parse(args.get("fault-inject"))
                : fault::FaultPlan::from_env();
        if (!fault_plan.empty()) {
            warn(strprintf("fault injection active: %zu entr%s",
                           fault_plan.num_entries(),
                           fault_plan.num_entries() == 1 ? "y" : "ies"));
            fault::install_fault_plan(&fault_plan);
        }

        batch::BatchOptions options;
        options.params = args.get("preset") == "lastz"
                             ? wga::WgaParams::lastz_defaults()
                             : wga::WgaParams::darwin_defaults();
        options.params.align_both_strands = args.get_flag("both-strands");
        if (args.get_flag("no-transitions"))
            options.params.dsoft.transitions = false;
        options.num_threads =
            static_cast<std::size_t>(args.get_int("threads"));
        options.shard_length =
            static_cast<std::size_t>(args.get_int("shard-bp"));
        options.queue_capacity =
            static_cast<std::size_t>(args.get_int("queue-cap"));
        options.pair_budget.wall_seconds = args.get_double("pair-timeout");
        options.pair_budget.max_cells =
            static_cast<std::uint64_t>(args.get_int("pair-max-cells"));
        options.pair_budget.max_heap_bytes =
            static_cast<std::uint64_t>(args.get_int("pair-max-heap-mb")) *
            (1ull << 20);
        options.degraded_retry = !args.get_flag("no-retry");
        options.streaming = args.get_flag("streaming");
        options.streaming_params.shard_bp = static_cast<std::uint64_t>(
            args.get_int("stream-shard-bp"));
        options.streaming_params.spill_dir = args.get("spill-dir");

        std::vector<batch::BatchJob> jobs;
        std::unordered_map<std::string, const ManifestEntry*> by_name;
        jobs.reserve(entries.size());
        for (const ManifestEntry& entry : entries) {
            jobs.push_back({entry.name, &entry.target, &entry.query});
            by_name[entry.name] = &entry;
        }
        inform(strprintf("batch: %zu pairs, %zu bp shards",
                         jobs.size(), options.shard_length));

        batch::MetricsRegistry metrics;
        tools::ObsSetup obs_setup(args, metrics);
        obs::ProgressOptions progress;
        progress.done_counter = "batch.pairs_completed";
        progress.total_counter = "batch.pairs";
        progress.queue_gauge_prefix = "batch.queue.";
        progress.label = "batch";
        obs_setup.start_progress(progress);

        // Stream outputs as pairs finish: atomic write, then journal —
        // so a journaled pair always has its final bytes on disk.
        options.on_pair_complete =
            [&](const batch::BatchPairResult& pair_result) {
                batch::JournalEntry entry;
                entry.pair = pair_result.name;
                entry.status = pair_result.status;
                switch (pair_result.status) {
                  case fault::PairStatus::Clean:
                  case fault::PairStatus::Degraded: {
                    const ManifestEntry& genomes =
                        *by_name.at(pair_result.name);
                    const std::string comment =
                        pair_result.status == fault::PairStatus::Degraded
                            ? strprintf("degraded=true attempts=%u "
                                        "(budget-overrun retry with "
                                        "narrowed parameters)",
                                        pair_result.attempts)
                            : "";
                    std::ostringstream maf;
                    wga::write_maf(maf, pair_result.result.alignments,
                                   genomes.target, genomes.query, comment);
                    batch::write_file_atomic(
                        (outdir / (pair_result.name + ".maf")).string(),
                        maf.str());
                    std::ostringstream chains;
                    wga::write_chains(chains, pair_result.result,
                                      genomes.target, genomes.query);
                    batch::write_file_atomic(
                        (outdir / (pair_result.name + ".chain")).string(),
                        chains.str());
                    entry.output = pair_result.name + ".maf";
                    journal.record(entry);
                    break;
                  }
                  case fault::PairStatus::Quarantined:
                    entry.reason =
                        fault::fail_reason_name(pair_result.quarantine.reason);
                    journal.record(entry);
                    break;
                  case fault::PairStatus::Interrupted:
                    // Not journaled: the pair reruns on --resume.
                    break;
                }
            };

        // Ctrl-C / SIGTERM: flip the cooperative shutdown flag; if the
        // pipeline doesn't unwind within the grace period, the watchdog
        // flushes observability + journal state and exits 130.
        tools::SignalGuard signals([&] {
            obs_setup.finish();
            journal.close();
            std::ofstream metrics_out(outdir / "metrics.json");
            if (metrics_out)
                metrics.write_json(metrics_out);
        });

        batch::BatchScheduler scheduler(options, &metrics);
        Timer timer;
        const auto results = scheduler.run(jobs);
        const double seconds = timer.seconds();
        obs_setup.finish();

        std::vector<fault::QuarantineRecord> quarantined;
        std::size_t clean = 0, degraded = 0, interrupted = 0;
        for (const auto& pair_result : results) {
            switch (pair_result.status) {
              case fault::PairStatus::Clean:
                ++clean;
                break;
              case fault::PairStatus::Degraded:
                ++degraded;
                break;
              case fault::PairStatus::Quarantined:
                quarantined.push_back(pair_result.quarantine);
                break;
              case fault::PairStatus::Interrupted:
                ++interrupted;
                break;
            }
            if (pair_result.status == fault::PairStatus::Clean ||
                pair_result.status == fault::PairStatus::Degraded) {
                const auto summary =
                    chain::summarize_chains(pair_result.result.chains);
                std::printf("%-16s alignments %6zu  chains %5zu  "
                            "matched bp %s%s\n",
                            pair_result.name.c_str(),
                            pair_result.result.alignments.size(),
                            pair_result.result.chains.size(),
                            with_commas(summary.total_matched_bases).c_str(),
                            status_tag(pair_result.status));
            } else {
                std::printf("%-16s %s: %s (%s stage)\n",
                            pair_result.name.c_str(),
                            fault::pair_status_name(pair_result.status),
                            fault::fail_reason_name(
                                pair_result.quarantine.reason),
                            pair_result.quarantine.stage.c_str());
            }
        }
        fault::write_quarantine_json((outdir / "quarantine.json").string(),
                                     quarantined);

        std::ofstream metrics_out(outdir / "metrics.json");
        metrics.write_json(metrics_out);
        journal.close();
        fault::install_fault_plan(nullptr);
        std::printf("finished %zu pairs in %.2fs (%zu clean, %zu degraded, "
                    "%zu quarantined, %zu interrupted); wrote %s/*.maf, "
                    "*.chain, journal.jsonl, metrics.json\n",
                    results.size(), seconds, clean, degraded,
                    quarantined.size(), interrupted,
                    outdir.string().c_str());
        if (signals.interrupted() || interrupted > 0) {
            std::fprintf(stderr,
                         "interrupted: rerun with --resume to finish the "
                         "remaining pairs\n");
            return 130;
        }
        return 0;
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
