/**
 * @file
 * `darwin-wga-batch` — streaming many-pair whole-genome alignment.
 *
 * Runs a manifest of (target, query) genome pairs through the batch
 * engine (src/batch/): each pair's query is sharded and driven through
 * seed -> filter -> extend -> chain as a pipeline-parallel dataflow, so
 * a handful of threads keeps every stage busy across the whole
 * manifest. Per-pair results are bit-identical to the serial
 * `darwin-wga align` pipeline.
 *
 * Manifest file: one pair per line, `name target.fa query.fa`
 * (whitespace-separated; '#' starts a comment). Alternatively,
 * --pairs synthesizes the paper's species pairs in-process (Fig. 8
 * phylogenetic sweep style).
 *
 *   darwin-wga-batch --manifest pairs.tsv --outdir out --threads 8
 *   darwin-wga-batch --pairs ce11-cb4,dm6-dp4,dm6-droYak2,dm6-droSim1 \
 *       --size 200000 --outdir sweep
 *
 * Outputs per pair: <outdir>/<name>.maf and <outdir>/<name>.chain, plus
 * <outdir>/metrics.json with the engine's per-stage metrics (queue
 * depths, task latencies, stage seconds).
 */
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "batch/scheduler.h"
#include "chain/chain_metrics.h"
#include "obs_support.h"
#include "seq/fasta.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "wga/chain_io.h"
#include "wga/maf.h"

using namespace darwin;

namespace {

/** A manifest entry plus ownership of any loaded/synthesized genomes. */
struct ManifestEntry {
    std::string name;
    seq::Genome target;
    seq::Genome query;
};

std::vector<ManifestEntry>
load_manifest(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("batch: cannot read manifest " + path);
    std::vector<ManifestEntry> entries;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        std::istringstream fields(text);
        std::string name, target_path, query_path;
        if (!(fields >> name >> target_path >> query_path)) {
            fatal(strprintf("batch: manifest line %zu needs "
                            "'name target.fa query.fa'",
                            line_number));
        }
        ManifestEntry entry;
        entry.name = name;
        entry.target = seq::read_genome(target_path);
        entry.query = seq::read_genome(query_path);
        entries.push_back(std::move(entry));
    }
    if (entries.empty())
        fatal("batch: manifest " + path + " has no entries");
    return entries;
}

std::vector<ManifestEntry>
synthesize_manifest(const ArgParser& args)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes =
        static_cast<std::size_t>(args.get_int("chromosomes"));
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome =
        shape.chromosome_length /
        static_cast<std::size_t>(args.get_int("exon-every"));

    std::vector<ManifestEntry> entries;
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    for (const std::string& name : split(args.get("pairs"), ',')) {
        const std::string pair_name = trim(name);
        if (pair_name.empty())
            continue;
        auto pair = synth::make_species_pair(
            synth::find_species_pair(pair_name), shape, seed);
        ManifestEntry entry;
        entry.name = pair_name;
        entry.target = std::move(pair.target.genome);
        entry.query = std::move(pair.query.genome);
        entries.push_back(std::move(entry));
    }
    if (entries.empty())
        fatal("batch: --pairs produced no entries");
    return entries;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("darwin-wga-batch: streaming batch whole-genome "
                   "alignment over a manifest of genome pairs.");
    args.add_option("manifest", "",
                    "manifest file: one 'name target.fa query.fa' per line");
    args.add_option("pairs", "",
                    "alternative: comma-separated synthetic paper pairs "
                    "(ce11-cb4,dm6-dp4,dm6-droYak2,dm6-droSim1)");
    args.add_option("size", "200000", "synthetic chromosome length (bp)");
    args.add_option("chromosomes", "1", "synthetic chromosomes per genome");
    args.add_option("exon-every", "2500", "one planted exon per N bp");
    args.add_option("seed", "1", "synthetic generator seed");
    args.add_option("outdir", "batch_out", "output directory");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    args.add_option("shard-bp", "262144", "query bp per work unit");
    args.add_option("queue-cap", "128", "inter-stage queue capacity");
    args.add_option("preset", "darwin",
                    "parameter preset: darwin | lastz");
    args.add_flag("both-strands", "also align the reverse complement");
    args.add_flag("no-transitions", "disable 1-transition seeds");
    tools::add_obs_options(args);
    if (!args.parse(argc, argv))
        return 1;

    init_log_level_from_env();
    try {
        std::vector<ManifestEntry> entries;
        if (!args.get("manifest").empty())
            entries = load_manifest(args.get("manifest"));
        else if (!args.get("pairs").empty())
            entries = synthesize_manifest(args);
        else
            fatal("batch: provide --manifest or --pairs");

        batch::BatchOptions options;
        options.params = args.get("preset") == "lastz"
                             ? wga::WgaParams::lastz_defaults()
                             : wga::WgaParams::darwin_defaults();
        options.params.align_both_strands = args.get_flag("both-strands");
        if (args.get_flag("no-transitions"))
            options.params.dsoft.transitions = false;
        options.num_threads =
            static_cast<std::size_t>(args.get_int("threads"));
        options.shard_length =
            static_cast<std::size_t>(args.get_int("shard-bp"));
        options.queue_capacity =
            static_cast<std::size_t>(args.get_int("queue-cap"));

        std::vector<batch::BatchJob> jobs;
        jobs.reserve(entries.size());
        for (const ManifestEntry& entry : entries)
            jobs.push_back({entry.name, &entry.target, &entry.query});
        inform(strprintf("batch: %zu pairs, %zu bp shards",
                         jobs.size(), options.shard_length));

        // Create the output directory up front so --metrics-out /
        // --trace-out / --log-json paths inside it open cleanly.
        const std::filesystem::path outdir(args.get("outdir"));
        std::filesystem::create_directories(outdir);

        batch::MetricsRegistry metrics;
        tools::ObsSetup obs_setup(args, metrics);
        obs::ProgressOptions progress;
        progress.done_counter = "batch.pairs_completed";
        progress.total_counter = "batch.pairs";
        progress.queue_gauge_prefix = "batch.queue.";
        progress.label = "batch";
        obs_setup.start_progress(progress);

        batch::BatchScheduler scheduler(options, &metrics);
        Timer timer;
        const auto results = scheduler.run(jobs);
        const double seconds = timer.seconds();
        obs_setup.finish();

        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& pair_result = results[i];
            const auto& entry = entries[i];
            wga::write_maf_file((outdir / (pair_result.name + ".maf"))
                                    .string(),
                                pair_result.result.alignments, entry.target,
                                entry.query);
            wga::write_chains_file((outdir / (pair_result.name + ".chain"))
                                       .string(),
                                   pair_result.result, entry.target,
                                   entry.query);
            const auto summary =
                chain::summarize_chains(pair_result.result.chains);
            std::printf("%-16s alignments %6zu  chains %5zu  "
                        "matched bp %s\n",
                        pair_result.name.c_str(),
                        pair_result.result.alignments.size(),
                        pair_result.result.chains.size(),
                        with_commas(summary.total_matched_bases).c_str());
        }

        std::ofstream metrics_out(outdir / "metrics.json");
        metrics.write_json(metrics_out);
        std::printf("aligned %zu pairs in %.2fs; wrote %s/*.maf, "
                    "*.chain, metrics.json\n",
                    results.size(), seconds,
                    outdir.string().c_str());
        return 0;
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
