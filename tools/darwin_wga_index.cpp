/**
 * @file
 * `darwin-wga-index` — build and inspect persistent reference indexes.
 *
 * Subcommands:
 *   build   FASTA target -> .dwi seed-position table (src/index/ format)
 *   info    print a .dwi header (version, digest, seed shape, sizes)
 *   fsck    validate artifacts (.dwi / .2bit / batch journals)
 *
 *   darwin-wga-index build --target t.fa --out t.dwi
 *   darwin-wga-index build --target t.fa --out t.dwi --preset lastz
 *   darwin-wga-index info --index t.dwi
 *   darwin-wga-index fsck t.dwi t.fa.2bit run/checkpoint.jsonl
 *
 * The index is exactly the table the aligner would build in memory for
 * `--target t.fa`, so `darwin-wga-serve` (or anything loading it via
 * index::load_index) produces bit-identical alignments from it.
 */
#include <cstdio>

#include "index/fsck.h"
#include "index/index_io.h"
#include "seed/seed_index.h"
#include "seed/sharded_index.h"
#include "seq/fasta.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "wga/params.h"

using namespace darwin;

namespace {

int
cmd_build(int argc, char** argv)
{
    ArgParser args("darwin-wga-index build: persist the seed-position "
                   "table of a target FASTA as a .dwi file.");
    args.add_option("target", "", "target genome FASTA (required)");
    args.add_option("out", "", "output .dwi path (required)");
    args.add_option("preset", "darwin",
                    "seed-shape preset: darwin | lastz (both use the "
                    "12-of-19 spaced seed today)");
    args.add_option("pattern", "",
                    "explicit seed shape of '1'/'0' (overrides --preset)");
    args.add_option("max-bucket", "256",
                    "repeat-seed truncation cap (must match the "
                    "aligner's; the default is what it uses)");
    args.add_option("shard-bp", "",
                    "write a sharded (version-2) index: band-start bp "
                    "owned per shard, e.g. 8388608. Shard slices use the "
                    "preset's D-SOFT chunk/bin margins. Omit for the "
                    "classic monolithic layout");
    if (!args.parse(argc, argv))
        return 1;
    if (args.get("target").empty() || args.get("out").empty()) {
        std::fprintf(stderr,
                     "build: --target and --out are required\n");
        return 1;
    }

    const wga::WgaParams preset = args.get("preset") == "lastz"
                                      ? wga::WgaParams::lastz_defaults()
                                      : wga::WgaParams::darwin_defaults();
    std::string pattern_text = args.get("pattern");
    if (pattern_text.empty())
        pattern_text = preset.seed_pattern;
    const auto max_bucket =
        static_cast<std::uint32_t>(args.get_int("max-bucket"));

    const auto genome = seq::read_genome(args.get("target"));
    const seq::Sequence& flat = genome.flattened();
    inform(strprintf("target: %zu chromosomes, %zu bp",
                     genome.num_chromosomes(), genome.total_length()));

    Timer timer;
    const seed::SeedPattern pattern(pattern_text);
    double build_seconds = 0.0;
    if (!args.get("shard-bp").empty()) {
        // Sharded build: one global counting pass, then each shard's
        // table built and streamed to disk in turn (plan_shards rejects
        // a zero shard size with a tagged error).
        const auto shard_bp =
            static_cast<std::uint64_t>(args.get_int("shard-bp"));
        const seed::ShardedSeedIndexBuilder builder(
            genome.flattened_packed(), pattern, max_bucket, shard_bp,
            preset.dsoft.chunk_size, preset.dsoft.bin_size);
        build_seconds = timer.seconds();
        timer.reset();
        index::save_sharded_index(args.get("out"), builder, shard_bp,
                                  index::sequence_digest(flat),
                                  flat.size());
    } else {
        const seed::SeedIndex index(flat, pattern, max_bucket);
        build_seconds = timer.seconds();
        timer.reset();
        index::save_index(args.get("out"), index,
                          index::sequence_digest(flat), flat.size());
    }
    const index::IndexInfo info = index::read_index_info(args.get("out"));

    std::printf("wrote %s (%s bytes)\n", args.get("out").c_str(),
                with_commas(info.total_bytes).c_str());
    if (info.num_shards > 0)
        std::printf("sharded layout: %u shard(s) of %s band-bp\n",
                    info.num_shards,
                    with_commas(info.shard_bp).c_str());
    std::printf("seed shape %s (weight %zu), %s positions, "
                "%s truncated buckets\n",
                info.pattern.c_str(), pattern.weight(),
                with_commas(info.num_positions).c_str(),
                with_commas(info.truncated_buckets).c_str());
    std::printf("sequence digest %016llx   build %.2fs   write %.2fs\n",
                static_cast<unsigned long long>(info.sequence_digest),
                build_seconds, timer.seconds());
    return 0;
}

int
cmd_info(int argc, char** argv)
{
    ArgParser args("darwin-wga-index info: print a .dwi file's header.");
    args.add_option("index", "", ".dwi file (required)");
    args.add_flag("json", "print the header as one JSON object");
    if (!args.parse(argc, argv))
        return 1;
    if (args.get("index").empty()) {
        std::fprintf(stderr, "info: --index is required\n");
        return 1;
    }

    const index::IndexInfo info =
        index::read_index_info(args.get("index"));
    if (args.get_flag("json")) {
        std::printf(
            "{\"version\": %u, \"sequence_digest\": \"%016llx\", "
            "\"sequence_length\": %llu, \"pattern\": %s, "
            "\"max_bucket\": %u, \"num_buckets\": %llu, "
            "\"num_positions\": %llu, \"skipped_windows\": %llu, "
            "\"truncated_buckets\": %llu, \"total_bytes\": %llu, "
            "\"shard_bp\": %llu, \"num_shards\": %u}\n",
            info.version,
            static_cast<unsigned long long>(info.sequence_digest),
            static_cast<unsigned long long>(info.sequence_length),
            json_quote(info.pattern).c_str(), info.max_bucket,
            static_cast<unsigned long long>(info.num_buckets),
            static_cast<unsigned long long>(info.num_positions),
            static_cast<unsigned long long>(info.skipped_windows),
            static_cast<unsigned long long>(info.truncated_buckets),
            static_cast<unsigned long long>(info.total_bytes),
            static_cast<unsigned long long>(info.shard_bp),
            info.num_shards);
        return 0;
    }
    std::printf("format version:    %u\n", info.version);
    std::printf("sequence digest:   %016llx\n",
                static_cast<unsigned long long>(info.sequence_digest));
    std::printf("sequence length:   %s bp\n",
                with_commas(info.sequence_length).c_str());
    std::printf("seed shape:        %s\n", info.pattern.c_str());
    std::printf("max bucket:        %u\n", info.max_bucket);
    std::printf("buckets:           %s\n",
                with_commas(info.num_buckets).c_str());
    std::printf("positions:         %s\n",
                with_commas(info.num_positions).c_str());
    std::printf("skipped windows:   %s\n",
                with_commas(info.skipped_windows).c_str());
    std::printf("truncated buckets: %s\n",
                with_commas(info.truncated_buckets).c_str());
    std::printf("file size:         %s bytes\n",
                with_commas(info.total_bytes).c_str());
    if (info.num_shards > 0) {
        std::printf("shard layout:      %u shard(s), %s band-bp each\n",
                    info.num_shards, with_commas(info.shard_bp).c_str());
        const index::ShardedIndexReader reader(args.get("index"));
        for (std::size_t s = 0; s < reader.num_shards(); ++s) {
            const auto& plan = reader.plan()[s];
            std::printf("  shard %zu: bands [%s, %s) slice [%s, %s)\n",
                        s, with_commas(plan.band_lo).c_str(),
                        with_commas(plan.band_hi).c_str(),
                        with_commas(plan.slice_lo).c_str(),
                        with_commas(plan.slice_hi).c_str());
        }
    }
    return 0;
}

int
cmd_fsck(int argc, char** argv)
{
    ArgParser args("darwin-wga-index fsck: validate darwin-wga disk "
                   "artifacts (.dwi indexes, .2bit sidecars, batch "
                   "checkpoint journals). Exit 0 when every file is "
                   "clean, 1 when any finding is reported.");
    args.add_flag("json", "print findings as JSONL");
    if (!args.parse(argc, argv))
        return 1;
    if (args.positional().empty()) {
        std::fprintf(stderr, "fsck: at least one FILE is required\n");
        return 1;
    }

    std::size_t total_findings = 0;
    for (const std::string& path : args.positional()) {
        std::string kind;
        const auto findings = index::fsck_file(path, &kind);
        if (findings.empty()) {
            if (!args.get_flag("json"))
                std::printf("%s: clean (%s)\n", path.c_str(),
                            kind.c_str());
            continue;
        }
        total_findings += findings.size();
        for (const auto& finding : findings) {
            if (args.get_flag("json")) {
                std::printf("{\"path\": %s, \"code\": %s, "
                            "\"detail\": %s}\n",
                            json_quote(finding.path).c_str(),
                            json_quote(finding.code).c_str(),
                            json_quote(finding.detail).c_str());
            } else {
                std::fprintf(stderr, "%s: [%s] %s\n",
                             finding.path.c_str(), finding.code.c_str(),
                             finding.detail.c_str());
            }
        }
    }
    if (total_findings > 0) {
        std::fprintf(stderr, "fsck: %zu finding(s) across %zu file(s)\n",
                     total_findings, args.positional().size());
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: darwin-wga-index <build|info|fsck> "
                     "[options]\n"
                     "  run a subcommand with --help for its options\n");
        return 1;
    }
    const std::string command = argv[1];
    init_log_level_from_env();
    try {
        if (command == "build")
            return cmd_build(argc - 1, argv + 1);
        if (command == "info")
            return cmd_info(argc - 1, argv + 1);
        if (command == "fsck")
            return cmd_fsck(argc - 1, argv + 1);
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    std::fprintf(stderr, "unknown subcommand '%s'\n", command.c_str());
    return 1;
}
