/**
 * @file
 * Graceful SIGINT/SIGTERM handling for the CLI tools.
 *
 * The handler itself only flips the async-signal-safe shutdown flag
 * (fault::request_shutdown) — the engine's workers observe it at their
 * next probe poll, cancel in-flight pairs as Interrupted, and unwind
 * normally so metrics, traces, and the checkpoint journal all flush
 * through the ordinary exit path.
 *
 * Two backstops keep a stuck pipeline from ignoring the user:
 *  - a watchdog thread waits a grace period after the first signal; if
 *    the process is still alive it runs the caller's flush callback and
 *    _exit(130)s, so a wedged kernel can't swallow Ctrl-C entirely;
 *  - a second signal skips the grace period and _exit(130)s at once.
 */
#ifndef DARWIN_TOOLS_SIGNAL_SUPPORT_H
#define DARWIN_TOOLS_SIGNAL_SUPPORT_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <functional>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "fault/cancel.h"

namespace darwin::tools {

namespace detail {
inline std::atomic<int> g_signal_count{0};

inline void
on_signal(int)
{
    // Async-signal-safe: an atomic increment and an atomic store.
    const int seen = g_signal_count.fetch_add(1) + 1;
    fault::request_shutdown();
    if (seen >= 2)
        ::_exit(130);
}
}  // namespace detail

/**
 * RAII signal guard: installs SIGINT/SIGTERM handlers on construction,
 * restores the previous handlers on destruction. One per process.
 */
class SignalGuard {
  public:
    /**
     * @param flush Called (from the watchdog thread) right before the
     *        forced exit when the grace period expires; use it to flush
     *        metrics/trace/journal state. Must be thread-safe against
     *        the main thread doing its own shutdown flushing.
     * @param grace_seconds How long after the first signal the normal
     *        exit path gets before the watchdog forces the issue.
     */
    explicit SignalGuard(std::function<void()> flush,
                         double grace_seconds = 10.0)
        : flush_(std::move(flush)), grace_seconds_(grace_seconds)
    {
        detail::g_signal_count.store(0);
        fault::clear_shutdown();
        prev_int_ = std::signal(SIGINT, detail::on_signal);
        prev_term_ = std::signal(SIGTERM, detail::on_signal);
        watchdog_ = std::thread([this] { watch(); });
    }

    ~SignalGuard()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        watchdog_.join();
        std::signal(SIGINT, prev_int_);
        std::signal(SIGTERM, prev_term_);
    }

    SignalGuard(const SignalGuard&) = delete;
    SignalGuard& operator=(const SignalGuard&) = delete;

    /** True once a signal arrived (the run should exit 130). */
    bool
    interrupted() const
    {
        return detail::g_signal_count.load() > 0;
    }

  private:
    void
    watch()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Phase 1: wait for a signal (or normal destruction). A signal
        // handler cannot notify a condition variable, so poll the flag.
        while (!stop_ && !interrupted())
            cv_.wait_for(lock, std::chrono::milliseconds(100));
        if (stop_)
            return;
        // Phase 2: give the cooperative shutdown its grace period.
        const auto grace = std::chrono::duration<double>(grace_seconds_);
        if (cv_.wait_for(lock, grace, [this] { return stop_; }))
            return;
        // The pipeline did not unwind in time: flush what we can and go.
        lock.unlock();
        if (flush_)
            flush_();
        ::_exit(130);
    }

    std::function<void()> flush_;
    double grace_seconds_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread watchdog_;
    void (*prev_int_)(int) = SIG_DFL;
    void (*prev_term_)(int) = SIG_DFL;
};

}  // namespace darwin::tools

#endif  // DARWIN_TOOLS_SIGNAL_SUPPORT_H
