/**
 * @file
 * Shared observability flag surface for the CLI tools: both `darwin-wga`
 * and `darwin-wga-batch` accept
 *
 *   --metrics-out FILE       final metrics registry dump (JSON)
 *   --metrics-every SEC      also rewrite --metrics-out every N seconds
 *                            (atomic tmp+rename, so scrapers and humans
 *                            tailing a long batch never read a partial
 *                            file; 0 = only at exit)
 *   --trace-out FILE         Chrome/Perfetto trace_event JSON
 *   --progress-interval SEC  heartbeat progress log (0 = off)
 *   --log-json FILE          mirror log records as JSON lines
 *   --kernel NAME            filter kernel: auto|scalar|sse42|avx2
 *                            (overrides the DARWIN_KERNEL env var; every
 *                            kernel is bit-identical, this only selects
 *                            the implementation)
 *   --backend NAME           batch backend: auto|serial|cpu-scalar|
 *                            cpu-simd|cycle-model (overrides the
 *                            DARWIN_BACKEND env var; every backend is
 *                            bit-identical, this only selects how tiles
 *                            are dispatched)
 *
 * ObsSetup owns the lifecycle: it installs the trace session and JSON
 * log sink when the flags ask for them, and finish() writes the output
 * files and uninstalls everything. Observability is purely additive —
 * alignment output is bit-identical with or without these flags.
 */
#ifndef DARWIN_TOOLS_OBS_SUPPORT_H
#define DARWIN_TOOLS_OBS_SUPPORT_H

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "align/kernels/kernel_registry.h"
#include "batch/checkpoint.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/logging.h"

namespace darwin::tools {

inline void
add_obs_options(ArgParser& args)
{
    args.add_option("metrics-out", "",
                    "write the final metrics registry as JSON here");
    args.add_option("metrics-every", "0",
                    "also rewrite --metrics-out atomically every N "
                    "seconds while running (0 = only at exit)");
    args.add_option("trace-out", "",
                    "write a Chrome/Perfetto trace_event JSON here");
    args.add_option("progress-interval", "0",
                    "log a progress heartbeat every N seconds (0 = off)");
    args.add_option("log-json", "",
                    "also write log records as JSON lines to this file");
    args.add_option("kernel", "",
                    "filter kernel: auto|scalar|sse42|avx2 (default: "
                    "$DARWIN_KERNEL, else auto)");
    args.add_option("backend", "",
                    "batch backend: auto|serial|cpu-scalar|cpu-simd|"
                    "cycle-model (default: $DARWIN_BACKEND, else auto)");
}

/** Flag-driven observability lifecycle for one CLI run. */
class ObsSetup {
  public:
    ObsSetup(const ArgParser& args, obs::MetricsRegistry& registry)
        : registry_(registry),
          metrics_path_(args.get("metrics-out")),
          trace_path_(args.get("trace-out")),
          progress_interval_(args.get_double("progress-interval"))
    {
        const std::string log_json = args.get("log-json");
        if (!log_json.empty())
            add_log_sink(std::make_shared<JsonLinesSink>(log_json));
        // --kernel overrides DARWIN_KERNEL (the registry already applied
        // the env var at startup); fatal() on an unknown/unusable name.
        const std::string kernel = args.get("kernel");
        if (!kernel.empty())
            align::kernels::KernelRegistry::instance().select(kernel);
        inform(std::string("filter kernel: ") +
               align::kernels::KernelRegistry::instance().active().name);
        // Same deal for --backend / DARWIN_BACKEND.
        const std::string backend = args.get("backend");
        if (!backend.empty())
            align::kernels::KernelRegistry::instance().select_backend(backend);
        inform(std::string("batch backend: ") +
               align::kernels::KernelRegistry::instance()
                   .active_backend()
                   .name);
        if (!trace_path_.empty()) {
            trace_ = std::make_unique<obs::TraceSession>();
            obs::TraceSession::install(trace_.get());
        }
        const double metrics_every = args.get_double("metrics-every");
        if (metrics_every > 0.0) {
            if (metrics_path_.empty())
                fatal("--metrics-every requires --metrics-out");
            start_periodic_dumps(metrics_every);
        }
    }

    ~ObsSetup()
    {
        finish();
        clear_log_sinks();
    }

    ObsSetup(const ObsSetup&) = delete;
    ObsSetup& operator=(const ObsSetup&) = delete;

    /** Begin heartbeats if --progress-interval asked for them. */
    void
    start_progress(obs::ProgressOptions options)
    {
        if (progress_interval_ <= 0.0)
            return;
        options.interval_seconds = progress_interval_;
        progress_ = std::make_unique<obs::ProgressReporter>(
            registry_, std::move(options));
        progress_->start();
    }

    /**
     * Stop the heartbeat, uninstall the trace session, and write the
     * requested output files. Idempotent and thread-safe — the signal
     * watchdog (signal_support.h) may race it against normal shutdown,
     * and whichever caller gets there first does the flush.
     */
    void
    finish()
    {
        // Stop the periodic dumper before taking finish_mutex_: the
        // dumper grabs that mutex per dump, so joining it while holding
        // the mutex would deadlock.
        stop_periodic_dumps();
        std::lock_guard<std::mutex> lock(finish_mutex_);
        if (progress_) {
            progress_->stop();
            progress_.reset();
        }
        if (trace_) {
            obs::TraceSession::install(nullptr);
            std::ofstream out(trace_path_);
            if (!out)
                fatal("cannot write trace to " + trace_path_);
            trace_->write_chrome_json(out);
            inform("wrote trace " + trace_path_);
            trace_.reset();
        }
        if (!metrics_path_.empty()) {
            std::ofstream out(metrics_path_);
            if (!out)
                fatal("cannot write metrics to " + metrics_path_);
            registry_.write_json(out);
            inform("wrote metrics " + metrics_path_);
            metrics_path_.clear();
        }
    }

  private:
    /**
     * Periodic --metrics-every dumper. Each dump goes through the
     * tmp+rename writer so readers (scrapers, humans with `watch cat`)
     * never observe a partially written registry.
     */
    void
    start_periodic_dumps(double interval_seconds)
    {
        periodic_thread_ = std::thread([this, interval_seconds] {
            const auto interval =
                std::chrono::duration<double>(interval_seconds);
            std::unique_lock<std::mutex> lock(periodic_mutex_);
            while (!periodic_stop_) {
                if (periodic_cv_.wait_for(lock, interval,
                                          [this] { return periodic_stop_; }))
                    break;
                lock.unlock();
                dump_metrics_atomic();
                lock.lock();
            }
        });
    }

    void
    stop_periodic_dumps()
    {
        {
            std::lock_guard<std::mutex> lock(periodic_mutex_);
            if (periodic_stop_)
                return;  // an earlier finish() already joined
            periodic_stop_ = true;
        }
        periodic_cv_.notify_all();
        if (periodic_thread_.joinable())
            periodic_thread_.join();
    }

    void
    dump_metrics_atomic()
    {
        std::lock_guard<std::mutex> lock(finish_mutex_);
        if (metrics_path_.empty())
            return;  // finish() already wrote the final dump
        batch::write_file_atomic(metrics_path_, registry_.to_json());
    }

    obs::MetricsRegistry& registry_;
    std::mutex finish_mutex_;
    std::string metrics_path_;
    std::string trace_path_;
    double progress_interval_ = 0.0;
    std::unique_ptr<obs::TraceSession> trace_;
    std::unique_ptr<obs::ProgressReporter> progress_;
    std::mutex periodic_mutex_;
    std::condition_variable periodic_cv_;
    bool periodic_stop_ = false;
    std::thread periodic_thread_;
};

}  // namespace darwin::tools

#endif  // DARWIN_TOOLS_OBS_SUPPORT_H
