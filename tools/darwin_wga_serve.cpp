/**
 * @file
 * `darwin-wga-serve` — long-lived alignment daemon over line-delimited
 * JSON (see src/serve/protocol.h for the wire format).
 *
 * Transports:
 *   default        requests on stdin, responses on stdout
 *   --socket PATH  AF_UNIX stream listener; one thread per connection,
 *                  all connections share the server's worker pool,
 *                  genome cache, and seed-index cache
 *
 *   darwin-wga-serve --workers 4 < requests.jsonl > responses.jsonl
 *   darwin-wga-serve --socket /tmp/darwin.sock &
 *
 * Shutdown: a client {"op": "shutdown"} or SIGTERM/SIGINT drains
 * in-flight requests (cancelling their budget tokens so nothing runs
 * long), flushes observability output, and exits 0. A second signal or
 * an expired grace period force-exits 130 via the watchdog.
 */
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs_support.h"
#include "serve/server.h"
#include "signal_support.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"

using namespace darwin;

namespace {

int
serve_socket(serve::Server& server, const std::string& path)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0)
        fatal(strprintf("socket: %s", std::strerror(errno)));
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(listener);
        fatal("socket path too long");
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listener);
        fatal(strprintf("bind %s: %s", path.c_str(),
                        std::strerror(err)));
    }
    if (::listen(listener, 16) != 0) {
        const int err = errno;
        ::close(listener);
        ::unlink(path.c_str());
        fatal(strprintf("listen %s: %s", path.c_str(),
                        std::strerror(err)));
    }
    inform(strprintf("serve: listening on %s", path.c_str()));

    std::vector<std::thread> connections;
    while (!server.stopping()) {
        if (fault::shutdown_requested()) {
            server.stop();
            break;
        }
        struct pollfd pfd = {};
        pfd.fd = listener;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        connections.emplace_back([&server, conn] {
            // Each connection runs the shared server's poll transport;
            // requests from every connection funnel into one queue.
            server.serve_fd(conn, conn);
            ::close(conn);
        });
    }
    server.stop();
    for (auto& connection : connections)
        connection.join();
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("darwin-wga-serve: long-lived alignment service "
                   "speaking line-delimited JSON on stdin/stdout or a "
                   "Unix socket.");
    args.add_option("socket", "",
                    "serve on this AF_UNIX socket path instead of "
                    "stdin/stdout");
    args.add_option("workers", "2", "concurrent align requests");
    args.add_option("queue", "64", "queued-request bound (backpressure)");
    args.add_option("index-cache", "8",
                    "resident seed indexes (LRU beyond this)");
    args.add_option("wall-budget", "0",
                    "default per-request wall seconds (0 = unlimited)");
    args.add_option("cells-budget", "0",
                    "default per-request DP-cell budget (0 = unlimited)");
    args.add_option("heap-budget", "0",
                    "default per-request heap bytes (0 = unlimited)");
    args.add_option("grace", "10",
                    "seconds a signalled shutdown may drain before the "
                    "watchdog force-exits");
    tools::add_obs_options(args);
    if (!args.parse(argc, argv))
        return 1;

    init_log_level_from_env();

    // A client that hangs up mid-response must not kill the daemon:
    // with SIGPIPE ignored, write() returns EPIPE and the response is
    // dropped by the serve loop's sink instead.
    std::signal(SIGPIPE, SIG_IGN);

    serve::ServerOptions options;
    options.num_workers =
        static_cast<std::size_t>(args.get_int("workers"));
    options.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue"));
    options.index_cache_capacity =
        static_cast<std::size_t>(args.get_int("index-cache"));
    options.default_budget.wall_seconds = args.get_double("wall-budget");
    options.default_budget.max_cells =
        static_cast<std::uint64_t>(args.get_int("cells-budget"));
    options.default_budget.max_heap_bytes =
        static_cast<std::uint64_t>(args.get_int("heap-budget"));

    try {
        obs::MetricsRegistry metrics;
        tools::ObsSetup obs_setup(args, metrics);
        serve::Server server(options, &metrics);
        // SIGTERM/SIGINT is the daemon's normal stop: the serve loops
        // poll the shutdown flag, cancel in-flight budget tokens, and
        // drain — so a clean signal exit is 0, not 130.
        tools::SignalGuard signals([&] { obs_setup.finish(); },
                                   args.get_double("grace"));

        const std::string socket_path = args.get("socket");
        if (socket_path.empty()) {
            inform("serve: reading requests from stdin");
            server.serve_fd(STDIN_FILENO, STDOUT_FILENO);
            server.stop();
        } else {
            serve_socket(server, socket_path);
        }
        obs_setup.finish();
        inform("serve: drained; exiting");
        return 0;
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
