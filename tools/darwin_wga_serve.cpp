/**
 * @file
 * `darwin-wga-serve` — long-lived alignment daemon over line-delimited
 * JSON (see src/serve/protocol.h for the wire format).
 *
 * Transports:
 *   default        requests on stdin, responses on stdout
 *   --socket PATH  AF_UNIX stream listener; one thread per connection,
 *                  all connections share the server's worker pool,
 *                  genome cache, and seed-index cache
 *
 *   darwin-wga-serve --workers 4 < requests.jsonl > responses.jsonl
 *   darwin-wga-serve --socket /tmp/darwin.sock &
 *
 * Shutdown: a client {"op": "shutdown"} or SIGTERM/SIGINT drains
 * in-flight requests (cancelling their budget tokens so nothing runs
 * long), flushes observability output, and exits 0. A second signal or
 * an expired grace period force-exits 130 via the watchdog.
 *
 * Live telemetry (all optional, all additive):
 *   --metrics-port N      loopback HTTP listener with GET /metrics
 *                         (Prometheus text), /healthz, /statusz
 *                         (0 picks an ephemeral port, logged at start)
 *   --flight-events N     always-on flight recorder retaining the last
 *                         N spans (default 8192; 0 disables; ignored
 *                         when --trace-out records the whole session)
 *   --flight-dump PATH    where SIGUSR1 writes the flight recorder as
 *                         a Chrome trace (clients can also request
 *                         {"op": "dump_trace", "out": ...})
 *   --slow-request-ms N   align requests slower than N ms emit one
 *                         structured log record with the per-stage
 *                         wall breakdown
 * plus a 1 Hz self-monitor publishing proc.rss_bytes / proc.cpu_* /
 * proc.fds / proc.threads / serve.queue_depth gauges.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "batch/checkpoint.h"
#include "fault/fault_plan.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/self_stats.h"
#include "obs_support.h"
#include "serve/http.h"
#include "serve/server.h"
#include "serve/socket_claim.h"
#include "signal_support.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

#ifndef DARWIN_VERSION
#define DARWIN_VERSION "unknown"
#endif

using namespace darwin;

namespace {

// SIGUSR1 requests a flight-recorder dump. The handler only bumps an
// atomic (the only async-signal-safe thing it may do); a 200 ms poller
// thread notices the bump and performs the actual file write.
std::atomic<unsigned> g_usr1_requests{0};

extern "C" void
on_sigusr1(int)
{
    g_usr1_requests.fetch_add(1, std::memory_order_relaxed);
}

/** Watches g_usr1_requests and dumps the trace session on each bump. */
class FlightDumpPoller {
  public:
    FlightDumpPoller(obs::TraceSession* session, std::string path)
        : session_(session), path_(std::move(path))
    {
        thread_ = std::thread([this] { loop(); });
    }

    ~FlightDumpPoller() { stop(); }

    void
    stop()
    {
        if (stopping_.exchange(true))
            return;
        if (thread_.joinable())
            thread_.join();
    }

  private:
    void
    loop()
    {
        unsigned seen = g_usr1_requests.load(std::memory_order_relaxed);
        while (!stopping_.load(std::memory_order_acquire)) {
            const unsigned now =
                g_usr1_requests.load(std::memory_order_relaxed);
            if (now != seen) {
                seen = now;
                dump();
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
    }

    void
    dump()
    {
        try {
            std::ostringstream json;
            session_->write_chrome_json(json);
            batch::write_file_atomic(path_, json.str());
            std::vector<LogField> fields{{"out", path_}};
            if (const auto* flight =
                    dynamic_cast<const obs::FlightRecorder*>(session_)) {
                fields.push_back(
                    {"recorded", strprintf("%llu",
                                           static_cast<unsigned long long>(
                                               flight->recorded()))});
                fields.push_back(
                    {"dropped", strprintf("%llu",
                                          static_cast<unsigned long long>(
                                              flight->dropped()))});
            }
            inform("serve: wrote flight-recorder trace", fields);
        } catch (const std::exception& error) {
            warn(strprintf("serve: flight dump failed: %s", error.what()));
        }
    }

    obs::TraceSession* session_;
    std::string path_;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

int
serve_socket(serve::Server& server, const std::string& path)
{
    // claim_unix_socket refuses (SocketInUseError -> exit 2 in main) a
    // path a live daemon still answers on, and takes over only a stale
    // socket file left by a crashed or SIGKILLed predecessor.
    const int listener = serve::claim_unix_socket(path);
    inform(strprintf("serve: listening on %s", path.c_str()));

    std::vector<std::thread> connections;
    while (!server.stopping()) {
        if (fault::shutdown_requested()) {
            server.stop();
            break;
        }
        struct pollfd pfd = {};
        pfd.fd = listener;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        const int conn = ::accept(listener, nullptr, nullptr);
        if (conn < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        connections.emplace_back([&server, conn] {
            // Each connection runs the shared server's poll transport;
            // requests from every connection funnel into one queue.
            server.serve_fd(conn, conn);
            ::close(conn);
        });
    }
    server.stop();
    for (auto& connection : connections)
        connection.join();
    ::close(listener);
    ::unlink(path.c_str());
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("darwin-wga-serve: long-lived alignment service "
                   "speaking line-delimited JSON on stdin/stdout or a "
                   "Unix socket.");
    args.add_option("socket", "",
                    "serve on this AF_UNIX socket path instead of "
                    "stdin/stdout");
    args.add_option("workers", "2", "concurrent align requests");
    args.add_option("queue", "64", "queued-request bound (backpressure)");
    args.add_option("max-queue", "0",
                    "admission bound: align requests beyond this many "
                    "queued are shed with an 'overloaded' error instead "
                    "of blocking the transport (0 = use --queue; control "
                    "ops are never shed)");
    args.add_option("max-inflight-bp", "0",
                    "admission bound on the summed query bp (x2 for "
                    "--both-strands) of queued + running align requests "
                    "(0 = unlimited; a lone oversized request still "
                    "runs)");
    args.add_option("breaker-window", "32",
                    "circuit breaker: rolling full-fidelity outcomes "
                    "watched for quarantine/budget trips");
    args.add_option("breaker-trip-ratio", "0.5",
                    "circuit breaker: failure fraction of the window "
                    "that opens the breaker");
    args.add_option("breaker-cooldown", "5",
                    "circuit breaker: seconds served degraded before a "
                    "half-open full-fidelity probe");
    args.add_flag("no-breaker",
                  "disable circuit-breaker degradation (overload trips "
                  "then fail requests instead of degrading them)");
    args.add_option("index-cache", "8",
                    "resident seed indexes (LRU beyond this)");
    args.add_option("wall-budget", "0",
                    "default per-request wall seconds (0 = unlimited)");
    args.add_option("cells-budget", "0",
                    "default per-request DP-cell budget (0 = unlimited)");
    args.add_option("heap-budget", "0",
                    "default per-request heap bytes (0 = unlimited)");
    args.add_option("grace", "10",
                    "seconds a signalled shutdown may drain before the "
                    "watchdog force-exits");
    args.add_option("metrics-port", "-1",
                    "serve GET /metrics, /healthz, /statusz on this "
                    "loopback TCP port (0 = ephemeral, -1 = off)");
    args.add_option("flight-events", "8192",
                    "flight-recorder span ring size (0 = off; unused "
                    "when --trace-out records the full session)");
    args.add_option("flight-dump", "flight.trace.json",
                    "where SIGUSR1 dumps the flight recorder as a "
                    "Chrome trace");
    args.add_option("slow-request-ms", "0",
                    "log a structured slow-request record for align "
                    "requests slower than this (0 = off)");
    args.add_flag("packed",
                  "hold resident genomes 2-bit packed (.2bit sidecar "
                  "cache, 4x less memory per genome) and align over "
                  "packed storage; output is bit-identical. Gapped "
                  "(darwin) presets only");
    tools::add_obs_options(args);
    if (!args.parse(argc, argv))
        return 1;

    init_log_level_from_env();

    // A client that hangs up mid-response must not kill the daemon:
    // with SIGPIPE ignored, write() returns EPIPE and the response is
    // dropped by the serve loop's sink instead.
    std::signal(SIGPIPE, SIG_IGN);

    // $DARWIN_FAULT arms the daemon's probes (serve.admit,
    // serve.dispatch, serve.respond, index.mmap, ...) for chaos drills
    // like tools/overload_smoke.py; unset means an empty plan.
    static const fault::FaultPlan fault_plan = fault::FaultPlan::from_env();
    if (!fault_plan.empty()) {
        warn(strprintf("fault injection active: %zu entr%s",
                       fault_plan.num_entries(),
                       fault_plan.num_entries() == 1 ? "y" : "ies"));
        fault::install_fault_plan(&fault_plan);
    }

    serve::ServerOptions options;
    options.num_workers =
        static_cast<std::size_t>(args.get_int("workers"));
    options.queue_capacity =
        static_cast<std::size_t>(args.get_int("queue"));
    options.index_cache_capacity =
        static_cast<std::size_t>(args.get_int("index-cache"));
    options.default_budget.wall_seconds = args.get_double("wall-budget");
    options.default_budget.max_cells =
        static_cast<std::uint64_t>(args.get_int("cells-budget"));
    options.default_budget.max_heap_bytes =
        static_cast<std::uint64_t>(args.get_int("heap-budget"));
    options.slow_request_seconds =
        args.get_double("slow-request-ms") / 1000.0;
    options.packed_genomes = args.get_flag("packed");
    options.max_queue = static_cast<std::size_t>(args.get_int("max-queue"));
    options.max_inflight_bp =
        static_cast<std::uint64_t>(args.get_int("max-inflight-bp"));
    options.breaker_enabled = !args.get_flag("no-breaker");
    options.breaker.window =
        static_cast<std::size_t>(args.get_int("breaker-window"));
    options.breaker.trip_ratio = args.get_double("breaker-trip-ratio");
    options.breaker.cooldown_seconds = args.get_double("breaker-cooldown");

    try {
        const Timer uptime;
        obs::MetricsRegistry metrics;
        tools::ObsSetup obs_setup(args, metrics);

        // Trace sinks, by precedence: --trace-out (whole-session log,
        // installed by ObsSetup) wins; otherwise the bounded flight
        // recorder runs continuously so recent spans are dumpable at
        // any point of a weeks-long run.
        std::unique_ptr<obs::FlightRecorder> flight;
        const auto flight_events =
            static_cast<std::size_t>(args.get_int("flight-events"));
        if (obs::TraceSession::current() == nullptr && flight_events > 0) {
            flight = std::make_unique<obs::FlightRecorder>(flight_events);
            obs::TraceSession::install(flight.get());
        }

        serve::Server server(options, &metrics);
        if (flight)
            server.set_trace_session(flight.get());

        // SIGTERM/SIGINT is the daemon's normal stop: the serve loops
        // poll the shutdown flag, cancel in-flight budget tokens, and
        // drain — so a clean signal exit is 0, not 130.
        tools::SignalGuard signals([&] { obs_setup.finish(); },
                                   args.get_double("grace"));

        // SIGUSR1 -> flight dump, via the async-signal-safe counter.
        std::unique_ptr<FlightDumpPoller> dump_poller;
        if (obs::TraceSession::current() != nullptr) {
            std::signal(SIGUSR1, on_sigusr1);
            dump_poller = std::make_unique<FlightDumpPoller>(
                obs::TraceSession::current(), args.get("flight-dump"));
        }

        // 1 Hz process self-monitor; the extra hook publishes the live
        // request-queue depth next to the proc gauges.
        obs::SelfMonitor self_monitor(metrics, 1.0, [&metrics, &server] {
            metrics.gauge("serve.queue_depth")
                .set(static_cast<std::int64_t>(server.queue_depth()));
        });

        // Config fingerprint for /statusz: the output-affecting knobs,
        // canonically rendered — two daemons with the same fingerprint
        // serve byte-identical alignments.
        const std::string canonical_config = strprintf(
            "serve|wall=%.6g|cells=%llu|heap=%llu",
            options.default_budget.wall_seconds,
            static_cast<unsigned long long>(
                options.default_budget.max_cells),
            static_cast<unsigned long long>(
                options.default_budget.max_heap_bytes));
        const std::string fingerprint =
            strprintf("%016llx", static_cast<unsigned long long>(
                                     fnv1a64(canonical_config)));

        std::unique_ptr<serve::HttpMetricsServer> http;
        const int metrics_port = static_cast<int>(
            args.get_int("metrics-port"));
        if (metrics_port >= 0) {
            serve::HttpHandlers handlers;
            handlers.metrics_text = [&metrics] {
                return obs::to_prometheus(metrics);
            };
            handlers.healthy = [&server] { return !server.stopping(); };
            handlers.statusz_json = [&server, &uptime, fingerprint] {
                std::ostringstream out;
                out << "{\"version\": \"" << DARWIN_VERSION << "\""
                    << ", \"uptime_seconds\": "
                    << strprintf("%.3f", uptime.seconds())
                    << ", \"config_fingerprint\": \"" << fingerprint
                    << "\""
                    << ", \"pid\": " << ::getpid()
                    << ", \"workers\": " << server.options().num_workers
                    << ", \"queue_depth\": " << server.queue_depth()
                    << ", \"stopping\": "
                    << (server.stopping() ? "true" : "false") << "}";
                return out.str();
            };
            http = std::make_unique<serve::HttpMetricsServer>(
                metrics_port, std::move(handlers));
            // Parsed by tools/serve_smoke.py to find an ephemeral port.
            inform(strprintf(
                "serve: metrics listening on http://127.0.0.1:%d/metrics",
                http->port()));
        }

        const std::string socket_path = args.get("socket");
        if (socket_path.empty()) {
            inform("serve: reading requests from stdin");
            server.serve_fd(STDIN_FILENO, STDOUT_FILENO);
            server.stop();
        } else {
            serve_socket(server, socket_path);
        }
        if (http)
            http->stop();
        if (dump_poller)
            dump_poller->stop();
        self_monitor.stop();
        if (flight) {
            server.set_trace_session(nullptr);
            obs::TraceSession::install(nullptr);
        }
        obs_setup.finish();
        inform("serve: drained; exiting");
        return 0;
    } catch (const serve::SocketInUseError& error) {
        std::fprintf(stderr, "error: socket-in-use: %s\n", error.what());
        return 2;
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
