#!/usr/bin/env python3
"""Smoke-test client for darwin-wga-serve, used by CI.

Starts the daemon on stdin/stdout, drives one session:

  1. ping                           -> status ok
  2. align against a persisted index -> status ok, MAF byte-identical
                                        to --reference when given
  3. align with max_cells=1          -> status error, reason "cells"
     (the budget trip must not take the daemon down)
  4. status                          -> status ok, sane counters

then sends SIGTERM and asserts the daemon drains and exits 0.

  python3 serve_smoke.py ./tools/darwin-wga-serve \
      --target t.fa --query q.fa --index t.dwi --reference cli.maf
"""
import argparse
import json
import signal
import subprocess
import sys


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("daemon", help="path to darwin-wga-serve")
    parser.add_argument("--target", required=True)
    parser.add_argument("--query", required=True)
    parser.add_argument("--index", required=True)
    parser.add_argument("--reference",
                        help="MAF to compare the served output against")
    parser.add_argument("--out", default="serve_smoke.maf")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    requests = [
        {"op": "ping", "id": "ping"},
        {"op": "align", "id": "align", "target": args.target,
         "query": args.query, "out": args.out, "index": args.index},
        {"op": "align", "id": "tripped", "target": args.target,
         "query": args.query, "out": args.out + ".never",
         "budget": {"max_cells": 1}},
        {"op": "status", "id": "status"},
    ]

    proc = subprocess.Popen(
        [args.daemon, "--workers", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)
    try:
        for request in requests:
            proc.stdin.write(json.dumps(request) + "\n")
        proc.stdin.flush()

        responses = {}
        for _ in requests:
            line = proc.stdout.readline()
            if not line:
                fail("daemon closed stdout before answering everything")
            print(f"serve_smoke: <- {line.strip()}")
            response = json.loads(line)
            responses[response.get("id")] = response

        if responses["ping"].get("status") != "ok":
            fail(f"ping failed: {responses['ping']}")

        align = responses["align"]
        if align.get("status") != "ok":
            fail(f"align failed: {align}")
        if align.get("alignments", 0) <= 0:
            fail(f"align produced no alignments: {align}")
        if args.reference:
            served = open(args.out, "rb").read()
            reference = open(args.reference, "rb").read()
            if served != reference:
                fail(f"{args.out} differs from {args.reference} "
                     f"({len(served)} vs {len(reference)} bytes)")
            print(f"serve_smoke: {args.out} byte-identical to "
                  f"{args.reference} ({len(served)} bytes)")

        tripped = responses["tripped"]
        if tripped.get("status") != "error":
            fail(f"budget request did not trip: {tripped}")
        if tripped.get("reason") != "cells":
            fail(f"budget trip has wrong reason: {tripped}")

        status = responses["status"]
        if status.get("status") != "ok":
            fail(f"status failed: {status}")
        if status.get("errors") != 1 or status.get("ok", 0) < 2:
            fail(f"status counters off: {status}")

        # Clean SIGTERM shutdown: drain and exit 0 (stdin stays open, so
        # only the signal can stop it).
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not exit after SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM, expected 0")
        print("serve_smoke: SIGTERM -> clean exit 0")
        print("serve_smoke: PASS")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
