#!/usr/bin/env python3
"""Smoke-test client for darwin-wga-serve, used by CI.

Starts the daemon on stdin/stdout with telemetry armed (--metrics-port 0,
a flight recorder, slow-request logging) and drives one session:

  1. ping                            -> status ok
  2. align against a persisted index -> status ok, MAF byte-identical
                                        to --reference when given
  3. align with max_cells=1          -> status error, reason "cells"
     (the budget trip must not take the daemon down)
  4. status                          -> status ok, sane counters
  5. stats                           -> status ok, embedded metrics JSON
  6. dump_trace                      -> status ok, file parses as a
                                        Chrome trace with pipeline spans
  7. GET /metrics and /healthz on the ephemeral HTTP port announced on
     stderr -> valid Prometheus text while the session is live
  8. SIGUSR1                         -> flight-recorder dump appears and
                                        parses as a Chrome trace

then sends SIGTERM and asserts the daemon drains and exits 0.

A second daemon launch floods an admission-capped server (--workers 1
--max-inflight-bp 1) with a burst of aligns and asserts the overload
contract: at least one request is served, at least one is shed with a
machine-readable "overloaded" error carrying a retry_after_ms hint >= 1,
and every request gets exactly one answer.

  python3 serve_smoke.py ./tools/darwin-wga-serve \
      --target t.fa --query q.fa --index t.dwi --reference cli.maf
"""
import argparse
import json
import queue
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request


def fail(message):
    print(f"serve_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class ResponseReader:
    """Drains daemon stdout on a thread so waits can time out and
    distinguish "daemon died" from "daemon is slow". (A plain blocking
    readline would hang forever on a wedged daemon, and select() on a
    buffered stream misses lines already sitting in the buffer.)"""

    def __init__(self, stream):
        self._queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True)
        self._thread.start()

    def _pump(self, stream):
        for line in stream:
            self._queue.put(line)
        self._queue.put(None)  # EOF marker

    def read_line(self, proc, what, timeout=300.0):
        """One response line, failing tagged on daemon exit or timeout."""
        try:
            line = self._queue.get(timeout=timeout)
        except queue.Empty:
            fail(f"timed out after {timeout}s waiting for {what}")
        if line is None:
            code = proc.poll()
            fail(f"daemon exited (code {code}) before answering {what}")
        return line


class StderrWatcher:
    """Echoes the daemon's stderr and captures the metrics-port line."""

    PORT_RE = re.compile(r"metrics listening on http://127\.0\.0\.1:(\d+)/")

    def __init__(self, stream):
        self.port = None
        self._found = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True)
        self._thread.start()

    def _pump(self, stream):
        for line in stream:
            sys.stderr.write(line)
            match = self.PORT_RE.search(line)
            if match:
                self.port = int(match.group(1))
                self._found.set()
        self._found.set()  # EOF: stop waiters either way

    def wait_for_port(self, timeout):
        self._found.wait(timeout)
        return self.port


def http_get(port, path, timeout=10.0):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode()


def check_prometheus_text(text):
    """Minimal structural validation of the exposition output."""
    if "# TYPE serve_requests_total counter" not in text:
        fail("Prometheus text lacks serve_requests_total TYPE line")
    if "serve_request_seconds_bucket{le=\"+Inf\"}" not in text:
        fail("Prometheus text lacks the mandatory +Inf bucket")
    for line in text.splitlines():
        if line.startswith("#") or not line:
            continue
        fields = line.rsplit(" ", 1)
        if len(fields) != 2:
            fail(f"unparseable exposition line: {line!r}")
        float(fields[1])  # every sample value must be numeric


def check_chrome_trace(path, description):
    trace = json.load(open(path))
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{description}: no traceEvents in {path}")
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        fail(f"{description}: no complete spans in {path}")
    names = {e.get("name") for e in spans}
    if "pipeline" not in names:
        fail(f"{description}: no pipeline span in {path} (got {names})")
    tagged = [e for e in spans if "req" in (e.get("args") or {})]
    if not tagged:
        fail(f"{description}: no span carries a req tag in {path}")
    print(f"serve_smoke: {description}: {len(spans)} spans, "
          f"{len(tagged)} request-tagged")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("daemon", help="path to darwin-wga-serve")
    parser.add_argument("--target", required=True)
    parser.add_argument("--query", required=True)
    parser.add_argument("--index", required=True)
    parser.add_argument("--reference",
                        help="MAF to compare the served output against")
    parser.add_argument("--out", default="serve_smoke.maf")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    trace_out = args.out + ".trace.json"
    flight_out = args.out + ".flight.json"
    requests = [
        {"op": "ping", "id": "ping"},
        {"op": "align", "id": "align", "target": args.target,
         "query": args.query, "out": args.out, "index": args.index},
        {"op": "align", "id": "tripped", "target": args.target,
         "query": args.query, "out": args.out + ".never",
         "budget": {"max_cells": 1}},
        {"op": "status", "id": "status"},
        {"op": "stats", "id": "stats"},
        {"op": "dump_trace", "id": "trace", "out": trace_out},
    ]

    proc = subprocess.Popen(
        [args.daemon, "--workers", "1", "--metrics-port", "0",
         "--flight-events", "4096", "--flight-dump", flight_out,
         "--slow-request-ms", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True)
    watcher = StderrWatcher(proc.stderr)
    reader = ResponseReader(proc.stdout)
    try:
        for request in requests:
            proc.stdin.write(json.dumps(request) + "\n")
        proc.stdin.flush()

        responses = {}
        for n in range(len(requests)):
            line = reader.read_line(
                proc, f"request {n + 1}/{len(requests)}",
                timeout=args.timeout)
            print(f"serve_smoke: <- {line.strip()}")
            response = json.loads(line)
            responses[response.get("id")] = response

        if responses["ping"].get("status") != "ok":
            fail(f"ping failed: {responses['ping']}")

        align = responses["align"]
        if align.get("status") != "ok":
            fail(f"align failed: {align}")
        if align.get("alignments", 0) <= 0:
            fail(f"align produced no alignments: {align}")
        if args.reference:
            served = open(args.out, "rb").read()
            reference = open(args.reference, "rb").read()
            if served != reference:
                fail(f"{args.out} differs from {args.reference} "
                     f"({len(served)} vs {len(reference)} bytes)")
            print(f"serve_smoke: {args.out} byte-identical to "
                  f"{args.reference} ({len(served)} bytes)")

        tripped = responses["tripped"]
        if tripped.get("status") != "error":
            fail(f"budget request did not trip: {tripped}")
        if tripped.get("reason") != "cells":
            fail(f"budget trip has wrong reason: {tripped}")

        status = responses["status"]
        if status.get("status") != "ok":
            fail(f"status failed: {status}")
        if status.get("errors") != 1 or status.get("ok", 0) < 2:
            fail(f"status counters off: {status}")

        stats = responses["stats"]
        if stats.get("status") != "ok":
            fail(f"stats failed: {stats}")
        metrics = stats.get("metrics")
        if not isinstance(metrics, dict):
            fail(f"stats carries no embedded metrics object: {stats}")
        if metrics.get("counters", {}).get("serve.requests", 0) < 4:
            fail(f"stats counters implausible: {metrics.get('counters')}")
        print("serve_smoke: stats snapshot ok "
              f"({len(metrics.get('histograms', {}))} histograms)")

        trace = responses["trace"]
        if trace.get("status") != "ok":
            fail(f"dump_trace failed: {trace}")
        check_chrome_trace(trace_out, "dump_trace op")

        # Scrape the embedded HTTP listener mid-session: the daemon is
        # still alive (stdin open), so /healthz must report ok.
        port = watcher.wait_for_port(timeout=30.0)
        if not port:
            fail("daemon never announced its metrics port on stderr")
        code, text = http_get(port, "/metrics")
        if code != 200:
            fail(f"GET /metrics -> {code}")
        check_prometheus_text(text)
        print(f"serve_smoke: GET /metrics ok "
              f"({len(text.splitlines())} lines)")
        code, text = http_get(port, "/healthz")
        if code != 200 or text.strip() != "ok":
            fail(f"GET /healthz -> {code} {text!r}")
        code, text = http_get(port, "/statusz")
        if code != 200 or "config_fingerprint" not in text:
            fail(f"GET /statusz -> {code} {text!r}")
        print("serve_smoke: /healthz and /statusz ok")

        # SIGUSR1 must produce a flight-recorder dump without help from
        # the protocol.  The poller runs at 200ms, so wait a little.
        proc.send_signal(signal.SIGUSR1)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                check_chrome_trace(flight_out, "SIGUSR1 flight dump")
                break
            except (FileNotFoundError, json.JSONDecodeError):
                time.sleep(0.1)
        else:
            fail(f"SIGUSR1 produced no parseable dump at {flight_out}")

        # Clean SIGTERM shutdown: drain and exit 0 (stdin stays open, so
        # only the signal can stop it).
        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("daemon did not exit after SIGTERM")
        if code != 0:
            fail(f"daemon exited {code} after SIGTERM, expected 0")
        print("serve_smoke: SIGTERM -> clean exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()

    overload_phase(args)
    print("serve_smoke: PASS")


def overload_phase(args):
    """Flood an admission-capped daemon and check the overload shape."""
    burst = 6
    proc = subprocess.Popen(
        [args.daemon, "--workers", "1", "--max-inflight-bp", "1"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL, text=True)
    reader = ResponseReader(proc.stdout)
    try:
        for n in range(burst):
            request = {"op": "align", "id": f"flood{n}",
                       "target": args.target, "query": args.query,
                       "out": f"{args.out}.flood{n}",
                       "index": args.index}
            proc.stdin.write(json.dumps(request) + "\n")
        proc.stdin.flush()

        served, shed = 0, 0
        for n in range(burst):
            line = reader.read_line(
                proc, f"flood response {n + 1}/{burst}",
                timeout=args.timeout)
            response = json.loads(line)
            if response.get("status") == "ok":
                served += 1
            elif response.get("reason") == "overloaded":
                # The machine-readable shed shape: status error, reason
                # overloaded, and an actionable retry hint.
                hint = response.get("retry_after_ms")
                if not isinstance(hint, int) or hint < 1:
                    fail(f"shed response lacks a usable retry_after_ms "
                         f"hint: {response}")
                shed += 1
            else:
                fail(f"flood answer is neither ok nor overloaded: "
                     f"{response}")
        if served < 1:
            fail("overload flood served nothing — the lone-oversized "
                 "admission rule is broken")
        if shed < 1:
            fail(f"overload flood shed nothing across {burst} requests "
                 f"against --max-inflight-bp 1")
        print(f"serve_smoke: overload flood: {served} served, "
              f"{shed} shed with retry hints")

        proc.send_signal(signal.SIGTERM)
        try:
            code = proc.wait(timeout=args.timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            fail("overloaded daemon did not exit after SIGTERM")
        if code != 0:
            fail(f"overloaded daemon exited {code} after SIGTERM")
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    main()
