#!/usr/bin/env python3
"""Overload and crash chaos drill for darwin-wga-serve, used by CI.

Three phases, each with its own daemon launch:

  1. flood     a one-worker daemon with a shallow admission queue runs
               under $DARWIN_FAULT dispatch stalls while a burst of
               aligns arrives: some are served, the rest come back as
               machine-readable "overloaded" sheds with retry_after_ms
               hints, /healthz keeps answering mid-flood, and an align
               carrying deadline_ms resolves within ~1.2x its deadline
               (served, shed, or cancelled — never wedged). SIGTERM
               then drains to exit 0.
  2. sigkill   a socket daemon is SIGKILLed mid-request, leaving a
               stale socket file; a second launch on the same path
               must take the path over (connect-probe finds no
               listener) and answer a ping, while a third launch
               against the *live* daemon must refuse with exit 2.
  3. fsck      `darwin-wga-index fsck` over the artifacts the drill
               touched (the persisted .dwi, any .2bit sidecar) exits 0:
               nothing the SIGKILL interrupted corrupted them.

  python3 overload_smoke.py ./tools/darwin-wga-serve \
      --index-tool ./tools/darwin-wga-index \
      --target t.fa --query q.fa --index t.dwi
"""
import argparse
import json
import os
import queue
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request


def fail(message):
    print(f"overload_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


class StderrWatcher:
    """Echoes daemon stderr; captures the metrics port and the socket
    listening announce."""

    PORT_RE = re.compile(r"metrics listening on http://127\.0\.0\.1:(\d+)/")
    LISTEN_RE = re.compile(r"serve: listening on (\S+)")

    def __init__(self, stream):
        self.port = None
        self._port_found = threading.Event()
        self.listening = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True)
        self._thread.start()

    def _pump(self, stream):
        for line in stream:
            sys.stderr.write(line)
            match = self.PORT_RE.search(line)
            if match:
                self.port = int(match.group(1))
                self._port_found.set()
            if self.LISTEN_RE.search(line):
                self.listening.set()
        self._port_found.set()
        self.listening.set()  # EOF unblocks waiters either way

    def wait_for_port(self, timeout):
        self._port_found.wait(timeout)
        return self.port


class ResponseReader:
    """Pumps daemon stdout into a queue on a thread. select() on a
    buffered text stream misses lines already drained into the buffer,
    so a blocking reader thread is the only robust shape."""

    def __init__(self, stream):
        self._queue = queue.Queue()
        self._thread = threading.Thread(
            target=self._pump, args=(stream,), daemon=True)
        self._thread.start()

    def _pump(self, stream):
        for line in stream:
            self._queue.put(line)
        self._queue.put(None)  # EOF marker

    def read_line(self, proc, what, timeout=300.0):
        try:
            line = self._queue.get(timeout=timeout)
        except queue.Empty:
            fail(f"timed out after {timeout}s waiting for {what}")
        if line is None:
            fail(f"daemon exited (code {proc.poll()}) before "
                 f"answering {what}")
        return line


def align_request(args, rid, extra=None):
    request = {"op": "align", "id": rid, "target": args.target,
               "query": args.query, "out": f"{args.scratch}/{rid}.maf",
               "index": args.index}
    if extra:
        request.update(extra)
    return request


def flood_phase(args):
    """Admission control under injected dispatch stalls."""
    env = dict(os.environ)
    # Every dispatch pauses 200 ms, so one worker drains the queue far
    # slower than the flood fills it — deterministic overload without
    # needing giant inputs.
    env["DARWIN_FAULT"] = "serve.dispatch:stall:ms=200:count=0"
    proc = subprocess.Popen(
        [args.daemon, "--workers", "1", "--max-queue", "2",
         "--metrics-port", "0"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env)
    watcher = StderrWatcher(proc.stderr)
    reader = ResponseReader(proc.stdout)
    try:
        burst = 8
        for n in range(burst):
            proc.stdin.write(
                json.dumps(align_request(args, f"flood{n}")) + "\n")
        proc.stdin.flush()

        # The daemon must stay observable while overloaded.
        port = watcher.wait_for_port(timeout=30.0)
        if not port:
            fail("daemon never announced its metrics port")
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10) as r:
            if r.status != 200 or r.read().decode().strip() != "ok":
                fail("/healthz did not answer ok mid-flood")
        print("overload_smoke: /healthz ok mid-flood")

        served, shed = 0, 0
        for n in range(burst):
            response = json.loads(reader.read_line(
                proc, f"flood response {n + 1}/{burst}", args.timeout))
            if response.get("status") == "ok":
                served += 1
            elif response.get("reason") == "overloaded":
                hint = response.get("retry_after_ms")
                if not isinstance(hint, int) or hint < 1:
                    fail(f"shed without usable retry_after_ms: "
                         f"{response}")
                shed += 1
            else:
                fail(f"flood answer neither ok nor overloaded: "
                     f"{response}")
        if served < 1 or shed < 1:
            fail(f"flood must both serve and shed "
                 f"(served {served}, shed {shed})")
        print(f"overload_smoke: flood: {served} served, {shed} shed")

        # A deadline-carrying request resolves promptly: served in
        # time, shed at dispatch, or cancelled by the wall clamp — the
        # one forbidden outcome is waiting unboundedly.
        deadline_ms = 1500
        started = time.monotonic()
        proc.stdin.write(json.dumps(align_request(
            args, "deadline", {"deadline_ms": deadline_ms})) + "\n")
        proc.stdin.flush()
        response = json.loads(reader.read_line(
            proc, "deadline response", args.timeout))
        elapsed_ms = (time.monotonic() - started) * 1000.0
        if response.get("status") == "error" and \
                response.get("reason") not in (
                    "deadline", "walltime", "overloaded"):
            fail(f"deadline request failed oddly: {response}")
        # 1.2x covers the clamp's slack; the grace term covers one
        # injected stall plus scheduling noise on a loaded CI box.
        if elapsed_ms > deadline_ms * 1.2 + 2000:
            fail(f"deadline_ms={deadline_ms} request took "
                 f"{elapsed_ms:.0f} ms")
        print(f"overload_smoke: deadline request resolved in "
              f"{elapsed_ms:.0f} ms "
              f"({response.get('status')}/{response.get('reason')})")

        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=args.timeout)
        if code != 0:
            fail(f"flood daemon exited {code} after SIGTERM")
        print("overload_smoke: flood daemon drained, exit 0")
    finally:
        if proc.poll() is None:
            proc.kill()


def socket_client(path, timeout):
    client = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    client.settimeout(timeout)
    client.connect(path)
    return client


def sigkill_phase(args):
    """Crash mid-request, stale-socket takeover, live-socket refusal."""
    sock = f"{args.scratch}/overload_smoke.sock"
    if os.path.exists(sock):
        os.unlink(sock)

    victim = subprocess.Popen(
        [args.daemon, "--socket", sock], stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    watcher = StderrWatcher(victim.stderr)
    try:
        if not watcher.listening.wait(30.0) or victim.poll() is not None:
            fail("victim daemon never started listening")
        client = socket_client(sock, args.timeout)
        client.sendall(
            (json.dumps(align_request(args, "doomed")) + "\n").encode())
        time.sleep(0.2)  # let the request reach a worker
        victim.kill()    # SIGKILL: no cleanup, socket file survives
        victim.wait(timeout=30)
        client.close()
        if not os.path.exists(sock):
            fail("SIGKILL should have left a stale socket file behind")
        print("overload_smoke: victim SIGKILLed mid-request, "
              "stale socket left")
    finally:
        if victim.poll() is None:
            victim.kill()

    successor = subprocess.Popen(
        [args.daemon, "--socket", sock], stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    watcher = StderrWatcher(successor.stderr)
    try:
        if not watcher.listening.wait(30.0) or \
                successor.poll() is not None:
            fail(f"successor refused the stale socket "
                 f"(exit {successor.poll()})")
        client = socket_client(sock, args.timeout)
        client.sendall(b'{"op": "ping", "id": "takeover"}\n')
        answer = client.makefile().readline()
        response = json.loads(answer)
        if response.get("status") != "ok":
            fail(f"ping after takeover failed: {response}")
        print("overload_smoke: successor took over the stale socket, "
              "ping ok")

        # While the successor lives, a third daemon must refuse the
        # path with exit 2 — never steal a working listener.
        thief = subprocess.run(
            [args.daemon, "--socket", sock], stdin=subprocess.DEVNULL,
            capture_output=True, text=True, timeout=60)
        if thief.returncode != 2:
            fail(f"daemon against a live socket exited "
                 f"{thief.returncode}, expected 2: {thief.stderr}")
        print("overload_smoke: live socket refused with exit 2")

        client.close()
        successor.send_signal(signal.SIGTERM)
        code = successor.wait(timeout=args.timeout)
        if code != 0:
            fail(f"successor exited {code} after SIGTERM")
    finally:
        if successor.poll() is None:
            successor.kill()


def fsck_phase(args):
    """Crash drills must not have corrupted any persisted artifact."""
    paths = [args.index]
    for sidecar in (args.target + ".2bit", args.query + ".2bit"):
        if os.path.exists(sidecar):
            paths.append(sidecar)
    result = subprocess.run(
        [args.index_tool, "fsck"] + paths,
        capture_output=True, text=True, timeout=120)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        fail(f"fsck found problems after the crash drill:\n"
             f"{result.stdout}{result.stderr}")
    print(f"overload_smoke: fsck clean over {len(paths)} artifact(s)")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("daemon", help="path to darwin-wga-serve")
    parser.add_argument("--index-tool", required=True,
                        help="path to darwin-wga-index (for fsck)")
    parser.add_argument("--target", required=True)
    parser.add_argument("--query", required=True)
    parser.add_argument("--index", required=True)
    parser.add_argument("--scratch", default=".",
                        help="directory for outputs and the test socket")
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args()

    flood_phase(args)
    sigkill_phase(args)
    fsck_phase(args)
    print("overload_smoke: PASS")


if __name__ == "__main__":
    main()
