/**
 * @file
 * `darwin-wga` — the command-line aligner a downstream user runs.
 *
 * Subcommands:
 *   align        FASTA target + query -> MAF alignments + chain report
 *   synthesize   generate a synthetic species pair as FASTA (+ BED-like
 *                exon annotations), for testing and benchmarking
 *   shuffle      dinucleotide-preserving genome shuffle (FPR null model)
 *
 *   darwin-wga align --target t.fa --query q.fa --out out.maf
 *   darwin-wga align --target t.fa --query q.fa --preset lastz
 *   darwin-wga synthesize --pair ce11-cb4 --size 500000 --prefix wk
 *   darwin-wga shuffle --in t.fa --out t_shuffled.fa --seed 7
 */
#include <cstdio>
#include <fstream>

#include "chain/chain_metrics.h"
#include "obs_support.h"
#include "signal_support.h"
#include "wga/chain_io.h"
#include "seq/fasta.h"
#include "seq/packed_io.h"
#include "seq/shuffle.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

using namespace darwin;

namespace {

int
cmd_align(int argc, char** argv)
{
    ArgParser args("darwin-wga align: whole genome alignment of two "
                   "FASTA genomes.");
    args.add_option("target", "", "target genome FASTA (required)");
    args.add_option("query", "", "query genome FASTA (required)");
    args.add_option("out", "out.maf", "output MAF path");
    args.add_option("chains", "", "also write UCSC .chain output here");
    args.add_option("preset", "darwin",
                    "parameter preset: darwin (gapped filtering) | "
                    "lastz (ungapped filtering)");
    args.add_option("hf", "0", "override filter threshold Hf (0 = preset)");
    args.add_option("he", "0",
                    "override extension threshold He (0 = preset)");
    args.add_option("band", "0", "override filter band B (0 = preset)");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    args.add_flag("no-transitions", "disable 1-transition seeds");
    args.add_flag("packed",
                  "ingest FASTA straight into 2-bit storage (cached in "
                  "a .2bit sidecar next to the input) and align over "
                  "packed words; output is bit-identical. Gapped "
                  "(darwin) preset only");
    args.add_flag("streaming",
                  "bounded-memory run for large genomes: 2-bit "
                  "storage, the seed table built one band shard at a "
                  "time, hits and candidates through spill-or-"
                  "backpressure channels. Implies --packed ingestion; "
                  "output is bit-identical. Gapped (darwin) preset "
                  "only");
    args.add_option("stream-shard-bp", "8388608",
                    "band-start bp per target shard in --streaming "
                    "mode (smaller = less resident memory, more query "
                    "re-scans)");
    args.add_option("spill-dir", "",
                    "--streaming overflow spill directory ('' = "
                    "system temp dir)");
    tools::add_obs_options(args);
    if (!args.parse(argc, argv))
        return 1;
    if (args.get("target").empty() || args.get("query").empty()) {
        std::fprintf(stderr, "align: --target and --query are required\n");
        return 1;
    }

    wga::WgaParams params = args.get("preset") == "lastz"
                                ? wga::WgaParams::lastz_defaults()
                                : wga::WgaParams::darwin_defaults();
    if (args.get_int("hf") > 0)
        params.filter_threshold =
            static_cast<align::Score>(args.get_int("hf"));
    if (args.get_int("he") > 0)
        params.extension_threshold =
            static_cast<align::Score>(args.get_int("he"));
    if (args.get_int("band") > 0)
        params.filter_band = static_cast<std::size_t>(args.get_int("band"));
    if (args.get_flag("no-transitions"))
        params.dsoft.transitions = false;

    const bool streaming = args.get_flag("streaming");
    const bool packed = args.get_flag("packed") || streaming;
    const auto target = packed
                            ? seq::read_genome_packed(args.get("target"))
                            : seq::read_genome(args.get("target"));
    const auto query = packed
                           ? seq::read_genome_packed(args.get("query"))
                           : seq::read_genome(args.get("query"));
    inform(strprintf("target: %zu chromosomes, %zu bp",
                     target.num_chromosomes(), target.total_length()));
    inform(strprintf("query:  %zu chromosomes, %zu bp",
                     query.num_chromosomes(), query.total_length()));

    obs::MetricsRegistry metrics_registry;
    tools::ObsSetup obs_setup(args, metrics_registry);
    obs::ProgressOptions progress;
    progress.done_counter = "wga.extend.alignments";
    progress.label = "align";
    obs_setup.start_progress(progress);

    // Ctrl-C / SIGTERM: the serial pipeline has no per-pair cancellation
    // to unwind through, so after a short grace the watchdog flushes the
    // partial metrics/trace and exits 130 instead of dropping them.
    tools::SignalGuard signals([&] { obs_setup.finish(); }, 2.0);

    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads")));
    const wga::WgaPipeline pipeline(params);
    wga::WgaResult result;
    if (streaming) {
        wga::StreamingParams sp;
        sp.shard_bp =
            static_cast<std::uint64_t>(args.get_int("stream-shard-bp"));
        sp.spill_dir = args.get("spill-dir");
        result = pipeline.run_streaming(target, query, sp, &pool,
                                        &metrics_registry);
    } else if (packed) {
        result = pipeline.run_packed(target, query, &pool,
                                     &metrics_registry);
    } else {
        result = pipeline.run(target, query, &pool, &metrics_registry);
    }
    obs_setup.finish();
    if (signals.interrupted())
        return 130;

    wga::write_maf_file(args.get("out"), result.alignments, target, query);
    if (!args.get("chains").empty()) {
        wga::write_chains_file(args.get("chains"), result, target, query);
        std::printf("wrote %s\n", args.get("chains").c_str());
    }
    const auto metrics = chain::summarize_chains(result.chains);
    std::printf("alignments: %zu   chains: %zu   matched bp: %s\n",
                result.alignments.size(), result.chains.size(),
                with_commas(metrics.total_matched_bases).c_str());
    std::printf("top-10 chain score: %.0f\n", metrics.top_k_score);
    std::printf("stage seconds: seed %.1f, filter %.1f, extend %.1f, "
                "chain %.1f\n",
                result.stats.seed_seconds, result.stats.filter_seconds,
                result.stats.extend_seconds, result.stats.chain_seconds);
    std::printf("workload: %s seed lookups, %s filter tiles, %s "
                "extension tiles\n",
                with_commas(result.stats.seeding.seed_lookups).c_str(),
                with_commas(result.stats.filter.tiles).c_str(),
                with_commas(result.stats.extend.extension.tiles).c_str());
    std::printf("wrote %s\n", args.get("out").c_str());
    return 0;
}

void
write_exons(const std::string& path, const synth::AnnotatedGenome& genome)
{
    std::ofstream out(path);
    if (!out)
        fatal("synthesize: cannot write " + path);
    for (std::size_t c = 0; c < genome.annotations.size(); ++c) {
        for (const auto& ann : genome.annotations[c]) {
            if (ann.kind != synth::AnnotationKind::Exon)
                continue;
            out << genome.genome.chromosome(c).name() << '\t'
                << ann.interval.start << '\t' << ann.interval.end << '\t'
                << ann.name << '\n';
        }
    }
}

int
cmd_synthesize(int argc, char** argv)
{
    ArgParser args("darwin-wga synthesize: generate a synthetic species "
                   "pair (FASTA + exon BED).");
    args.add_option("pair", "ce11-cb4",
                    "paper pair: ce11-cb4 | dm6-dp4 | dm6-droYak2 | "
                    "dm6-droSim1");
    args.add_option("size", "500000", "chromosome length (bp)");
    args.add_option("chromosomes", "2", "chromosomes per genome");
    args.add_option("exon-every", "2500", "one planted exon per N bp");
    args.add_option("seed", "1", "generator seed");
    args.add_option("prefix", "pair", "output file prefix");
    if (!args.parse(argc, argv))
        return 1;

    synth::AncestorConfig shape;
    shape.num_chromosomes =
        static_cast<std::size_t>(args.get_int("chromosomes"));
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome =
        shape.chromosome_length /
        static_cast<std::size_t>(args.get_int("exon-every"));
    const auto pair = synth::make_species_pair(
        synth::find_species_pair(args.get("pair")), shape,
        static_cast<std::uint64_t>(args.get_int("seed")));

    const std::string prefix = args.get("prefix");
    seq::write_genome_file(prefix + "_target.fa", pair.target.genome);
    seq::write_genome_file(prefix + "_query.fa", pair.query.genome);
    write_exons(prefix + "_target_exons.bed", pair.target);
    write_exons(prefix + "_query_exons.bed", pair.query);
    std::printf("wrote %s_target.fa (%zu bp), %s_query.fa (%zu bp), and "
                "exon BED files (%zu exons)\n",
                prefix.c_str(), pair.target.genome.total_length(),
                prefix.c_str(), pair.query.genome.total_length(),
                pair.target.total_exons());
    return 0;
}

int
cmd_shuffle(int argc, char** argv)
{
    ArgParser args("darwin-wga shuffle: dinucleotide-preserving genome "
                   "shuffle (the FPR null model).");
    args.add_option("in", "", "input FASTA (required)");
    args.add_option("out", "shuffled.fa", "output FASTA");
    args.add_option("seed", "1", "shuffle seed");
    if (!args.parse(argc, argv))
        return 1;
    if (args.get("in").empty()) {
        std::fprintf(stderr, "shuffle: --in is required\n");
        return 1;
    }
    const auto genome = seq::read_genome(args.get("in"));
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    const auto shuffled = seq::shuffle_genome(genome, rng);
    seq::write_genome_file(args.get("out"), shuffled);
    std::printf("wrote %s (%zu chromosomes, 2-mer counts preserved)\n",
                args.get("out").c_str(), shuffled.num_chromosomes());
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: darwin-wga <align|synthesize|shuffle> "
                     "[options]\n  run a subcommand with --help for its "
                     "options\n");
        return 1;
    }
    const std::string command = argv[1];
    init_log_level_from_env();
    try {
        if (command == "align")
            return cmd_align(argc - 1, argv + 1);
        if (command == "synthesize")
            return cmd_synthesize(argc - 1, argv + 1);
        if (command == "shuffle")
            return cmd_shuffle(argc - 1, argv + 1);
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    std::fprintf(stderr, "unknown subcommand '%s'\n", command.c_str());
    return 1;
}
